package gavelsim

import (
	"testing"

	"pop/internal/cluster"
	"pop/internal/core"
	"pop/internal/lp"
)

func exactPolicy(jobs []cluster.Job, c cluster.Cluster) (*cluster.Allocation, error) {
	return cluster.MaxMinFairness(jobs, c, lp.Options{})
}

func popPolicy(k int) Policy {
	return func(jobs []cluster.Job, c cluster.Cluster) (*cluster.Allocation, error) {
		return cluster.SolvePOP(jobs, c, cluster.MaxMinFairness,
			core.Options{K: k, Seed: 11, Parallel: true}, lp.Options{})
	}
}

func TestRunCompletesAllJobs(t *testing.T) {
	cfg := Config{
		Cluster:            cluster.NewCluster(8, 8, 8),
		NumJobs:            12,
		ArrivalRatePerHour: 6,
		RoundSeconds:       360,
		Seed:               1,
	}
	res, err := Run(cfg, exactPolicy)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != cfg.NumJobs {
		t.Fatalf("completed %d of %d jobs", res.Completed, cfg.NumJobs)
	}
	if res.AvgJCTHours <= 0 {
		t.Fatalf("avg JCT = %g", res.AvgJCTHours)
	}
	if res.MakespanHours < res.AvgJCTHours {
		t.Fatalf("makespan %g < avg JCT %g", res.MakespanHours, res.AvgJCTHours)
	}
	if res.PolicyCalls == 0 || res.PolicyTime <= 0 {
		t.Fatal("policy accounting missing")
	}
}

func TestAllAtOnceMakespan(t *testing.T) {
	cfg := Config{
		Cluster:      cluster.NewCluster(6, 6, 6),
		NumJobs:      10,
		AllAtOnce:    true,
		RoundSeconds: 360,
		Seed:         3,
	}
	res, err := Run(cfg, exactPolicy)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != cfg.NumJobs {
		t.Fatalf("completed %d of %d", res.Completed, cfg.NumJobs)
	}
}

func TestPOPPolicyEndToEndClose(t *testing.T) {
	// The paper's end-to-end claim: POP-ped policies leave JCT nearly
	// unchanged. At this scale allow 25%.
	cfg := Config{
		Cluster:            cluster.NewCluster(10, 10, 10),
		NumJobs:            20,
		ArrivalRatePerHour: 8,
		RoundSeconds:       360,
		Seed:               7,
	}
	exact, err := Run(cfg, exactPolicy)
	if err != nil {
		t.Fatal(err)
	}
	pop, err := Run(cfg, popPolicy(2))
	if err != nil {
		t.Fatal(err)
	}
	if pop.Completed != exact.Completed {
		t.Fatalf("completion mismatch: %d vs %d", pop.Completed, exact.Completed)
	}
	if pop.AvgJCTHours > exact.AvgJCTHours*1.25 {
		t.Fatalf("POP JCT %g vs exact %g", pop.AvgJCTHours, exact.AvgJCTHours)
	}
}

func TestDeterministicTrace(t *testing.T) {
	cfg := Config{
		Cluster:            cluster.NewCluster(4, 4, 4),
		NumJobs:            8,
		ArrivalRatePerHour: 10,
		Seed:               5,
	}
	a, err := Run(cfg, exactPolicy)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, exactPolicy)
	if err != nil {
		t.Fatal(err)
	}
	if a.AvgJCTHours != b.AvgJCTHours || a.Rounds != b.Rounds {
		t.Fatal("simulation not deterministic")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{}, exactPolicy); err == nil {
		t.Fatal("expected error for zero jobs")
	}
}
