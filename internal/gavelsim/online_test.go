package gavelsim

import (
	"testing"

	"pop/internal/cluster"
	"pop/internal/lp"
	"pop/internal/online"
)

// TestRunOnlineDrivesEngine runs the simulator with the incremental engine
// as the round-loop driver: the simulation must complete, the engine must
// see every round, and the arrival/departure churn must have produced
// cheap (clean-skipping or warm-started) rounds.
func TestRunOnlineDrivesEngine(t *testing.T) {
	cfg := Config{
		Cluster:            cluster.NewCluster(6, 6, 6),
		NumJobs:            16,
		ArrivalRatePerHour: 6,
		RoundSeconds:       360,
		Seed:               5,
	}
	eng, err := online.NewClusterEngine(cfg.Cluster, online.MaxMinFairness, online.Options{K: 3}, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunOnline(cfg, eng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != cfg.NumJobs {
		t.Fatalf("completed %d/%d jobs", res.Completed, cfg.NumJobs)
	}
	st := eng.Stats()
	if st.Rounds != res.PolicyCalls {
		t.Fatalf("engine rounds %d != policy calls %d", st.Rounds, res.PolicyCalls)
	}
	if st.SkippedClean == 0 && st.WarmHits == 0 {
		t.Fatal("online run never skipped a clean sub-problem nor warm-started one")
	}
	if st.Departures == 0 {
		t.Fatal("completions never reached the engine as departures")
	}
}

// TestRunOnlineMatchesBatchPOPShape: the engine's end-to-end metrics must
// be in the same ballpark as the batch POP policy's — the online path is an
// optimization, not a different scheduler.
func TestRunOnlineMatchesBatchPOPShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	cfg := Config{
		Cluster:      cluster.NewCluster(6, 6, 6),
		NumJobs:      12,
		AllAtOnce:    true,
		RoundSeconds: 360,
		Seed:         7,
	}
	eng, err := online.NewClusterEngine(cfg.Cluster, online.MinMakespan, online.Options{K: 2}, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	on, err := RunOnline(cfg, eng)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := Run(cfg, func(js []cluster.Job, c cluster.Cluster) (*cluster.Allocation, error) {
		return cluster.MinMakespan(js, c, lp.Options{})
	})
	if err != nil {
		t.Fatal(err)
	}
	if on.Completed != batch.Completed {
		t.Fatalf("online completed %d, batch %d", on.Completed, batch.Completed)
	}
	// POP-k trails the exact optimum but must stay within 2x on makespan.
	if on.MakespanHours > 2*batch.MakespanHours {
		t.Fatalf("online makespan %.2fh vs exact %.2fh", on.MakespanHours, batch.MakespanHours)
	}
}
