module pop

go 1.24
