// Load balancing example: the §4.3 shard-placement MILP over several
// rounds of shifting load, comparing the exact solve, POP-2, and the
// E-Store-style greedy — Figure 13 at example scale.
package main

import (
	"fmt"
	"time"

	"pop/internal/core"
	"pop/internal/lb"
	"pop/internal/milp"
)

func main() {
	const (
		shards  = 16
		servers = 4
		rounds  = 5
	)
	fmt.Printf("%d shards on %d servers, %d rounds, load band ±5%%\n\n", shards, servers, rounds)

	milpOpts := milp.Options{MaxNodes: 2000, TimeLimit: 10 * time.Second}
	run := func(label string, solver lb.Solver) {
		inst := lb.NewInstance(shards, servers, 0.05, 77)
		res, err := lb.RunRounds(inst, rounds, 55, solver)
		must(err)
		fmt.Printf("%-12s %8.1f movements/round  deviation %.3f  in %v/round\n",
			label, res.AvgMovements, res.AvgDeviation, res.AvgRuntime.Round(time.Microsecond))
	}

	run("Exact sol.", func(in *lb.Instance) (*lb.Assignment, error) {
		return lb.SolveMILP(in, milpOpts)
	})
	run("POP-2", func(in *lb.Instance) (*lb.Assignment, error) {
		return lb.SolvePOP(in, core.Options{K: 2, Seed: 9, Parallel: true}, milpOpts)
	})
	run("Greedy", func(in *lb.Instance) (*lb.Assignment, error) {
		return lb.SolveGreedy(in), nil
	})

	fmt.Println("\nThe MILP moves the least data but its branch-and-bound cost grows")
	fmt.Println("exponentially; POP solves one small MILP per shard/server partition;")
	fmt.Println("the greedy is fastest but often misses the load band entirely.")
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
