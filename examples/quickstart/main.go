// Quickstart: POP on a toy allocation problem using only the public API.
//
// The problem: n analytics jobs must be packed onto m identical workers;
// each job has a CPU demand, each worker a capacity, and we want to
// maximize the total demand served (jobs are divisible). The exact solution
// would be one big bin-packing LP; because the problem is granular — many
// small jobs, interchangeable workers — POP solves k small instances
// instead and concatenates the results.
package main

import (
	"fmt"
	"math/rand"
	"sort"

	"pop"
)

type job struct {
	id     int
	demand float64
}

type worker struct {
	id       int
	capacity float64
}

// alloc maps job id → served demand.
type alloc map[int]float64

// solveSub is the "original formulation": a greedy fractional packing that
// serves jobs largest-first. (Any solver works here — POP reuses whatever
// you already have.)
func solveSub(jobs []job, workers []worker, _ int) (alloc, error) {
	free := 0.0
	for _, w := range workers {
		free += w.capacity
	}
	sorted := append([]job(nil), jobs...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].demand > sorted[b].demand })
	out := alloc{}
	for _, j := range sorted {
		take := j.demand
		if take > free {
			take = free
		}
		out[j.id] = take
		free -= take
	}
	return out, nil
}

func main() {
	rng := rand.New(rand.NewSource(1))
	jobs := make([]job, 1000)
	for i := range jobs {
		jobs[i] = job{id: i, demand: 0.5 + rng.Float64()}
	}
	workers := make([]worker, 64)
	for i := range workers {
		workers[i] = worker{id: i, capacity: 10}
	}

	problem := pop.Problem[job, worker, alloc]{
		Clients:    jobs,
		Resources:  workers,
		ClientLoad: func(j job) float64 { return j.demand },
		SolveSub:   solveSub,
		Coalesce: func(allocs []alloc, _ [][]int) (alloc, error) {
			merged := alloc{}
			for _, a := range allocs {
				for id, v := range a {
					merged[id] += v
				}
			}
			return merged, nil
		},
	}

	for _, k := range []int{1, 4, 16} {
		result, err := pop.Solve(problem, pop.Options{K: k, Seed: 42, Parallel: true})
		if err != nil {
			panic(err)
		}
		total := 0.0
		for _, v := range result {
			total += v
		}
		fmt.Printf("POP-%-2d served %.1f CPU units across %d jobs\n", k, total, len(result))
	}
	fmt.Println("\nEach POP-k run partitions the jobs randomly into k groups and")
	fmt.Println("the workers evenly; the sub-solutions concatenate into a feasible")
	fmt.Println("global allocation. Served totals stay near-identical while each")
	fmt.Println("sub-problem is k× smaller (and they run in parallel).")
}
