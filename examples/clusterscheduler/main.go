// Cluster scheduling example: heterogeneity-aware max-min fairness with
// space sharing on a GPU cluster (the Gavel policy from §4.1 of the POP
// paper), comparing the exact LP, POP-4, and the Gandiva-style heuristic —
// Figure 2 at example scale.
package main

import (
	"fmt"
	"time"

	"pop/internal/cluster"
	"pop/internal/core"
	"pop/internal/lp"
)

func main() {
	jobs := cluster.GenerateJobs(48, 11, 0)
	c := cluster.NewCluster(12, 12, 12)
	fmt.Printf("%d jobs on a %g-GPU cluster (K80/P100/V100)\n\n", len(jobs), c.TotalGPUs())

	report := func(label string, d time.Duration, a *cluster.Allocation) {
		min, mean := cluster.MinMean(cluster.NormalizedRatios(jobs, c, a))
		fmt.Printf("%-12s min %.4f  mean %.4f  (%6d LP vars) in %v\n",
			label, min, mean, a.LPVariables, d.Round(time.Millisecond))
	}

	start := time.Now()
	exact, err := cluster.MaxMinFairnessSpaceSharing(jobs, c, lp.Options{})
	must(err)
	report("Exact sol.", time.Since(start), exact)

	start = time.Now()
	popAlloc, err := cluster.SolvePOPSpaceSharing(jobs, c,
		core.Options{K: 4, Seed: 3, Parallel: true}, lp.Options{})
	must(err)
	must(cluster.VerifyFeasible(jobs, c, popAlloc, 1e-6))
	report("POP-4", time.Since(start), popAlloc)

	start = time.Now()
	gandiva := cluster.Gandiva(jobs, c, 5)
	report("Gandiva", time.Since(start), gandiva)

	fmt.Println("\nPOP partitions jobs into 4 random groups, each scheduled on a")
	fmt.Println("quarter of the cluster with the unchanged LP. Pair variables only")
	fmt.Println("form within a group, which is where the large speedup comes from.")
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
