// Traffic engineering example: maximize total flow on a WAN.
//
// Compares the exact path-based LP (§4.2 of the POP paper), POP-8 with
// resource splitting, and the CSPF heuristic on a Cogentco-like topology
// with gravity-model traffic. This is the Figure 9 experiment at example
// scale — see cmd/popbench for the full version.
package main

import (
	"fmt"
	"time"

	"pop/internal/core"
	"pop/internal/lp"
	"pop/internal/te"
	"pop/internal/tm"
	"pop/internal/topo"
)

func main() {
	tp := topo.GenerateScaled("Cogentco", 0.4) // ~79 nodes
	demands := tm.Generate(tm.Config{
		Nodes:       tp.G.N,
		Commodities: 1600,
		Model:       tm.Gravity,
		TotalDemand: tp.TotalCapacity() * 0.3,
		Seed:        7,
	})
	inst := te.NewInstance(tp, demands, 4)
	fmt.Printf("topology %s: %d nodes, %d edges; %d commodities, %d LP variables\n\n",
		tp.Name, tp.G.N, len(tp.G.Edges), len(demands), inst.NumVariables())

	start := time.Now()
	exact, err := te.SolveLP(inst, te.MaxTotalFlow, lp.Options{})
	must(err)
	dExact := time.Since(start)
	fmt.Printf("%-12s flow %8.1f   (optimal)          in %v\n", "Exact sol.", exact.TotalFlow, dExact.Round(time.Millisecond))

	// k is POP's quality/runtime knob: higher k is faster, slightly
	// further from optimal.
	for _, k := range []int{4, 8} {
		start = time.Now()
		popAlloc, err := te.SolvePOP(inst, te.MaxTotalFlow,
			core.Options{K: k, Seed: 1, Parallel: true}, lp.Options{})
		must(err)
		dPop := time.Since(start)
		must(popAlloc.VerifyFeasible(inst, 1e-6))
		fmt.Printf("%-12s flow %8.1f   (%.1f%% of optimal) in %v — %.1fx faster\n",
			fmt.Sprintf("POP-%d", k),
			popAlloc.TotalFlow, 100*popAlloc.TotalFlow/exact.TotalFlow,
			dPop.Round(time.Millisecond), dExact.Seconds()/dPop.Seconds())
	}

	start = time.Now()
	cspf := te.SolveCSPF(inst)
	dCspf := time.Since(start)
	fmt.Printf("%-12s flow %8.1f   (%.1f%% of optimal) in %v\n", "CSPF",
		cspf.TotalFlow, 100*cspf.TotalFlow/exact.TotalFlow, dCspf.Round(time.Millisecond))

	fmt.Println("\nPOP reuses the exact LP on k random commodity subsets, each seeing")
	fmt.Println("every link at 1/k capacity (resource splitting), so the coalesced")
	fmt.Println("allocation is feasible by construction.")
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
