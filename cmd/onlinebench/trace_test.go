package main

import (
	"path/filepath"
	"testing"

	"pop/internal/obs"
)

// TestTraceNesting is the acceptance check for the -trace output: run a
// small bench sequence under a trace, write the Chrome trace-event file,
// load it back, and require the span hierarchy to nest solve < round < run
// by wall-clock containment.
func TestTraceNesting(t *testing.T) {
	tr := obs.NewTrace()
	benchObs = &obs.Observer{Trace: tr}
	defer func() { benchObs = nil }()

	runSpan := benchObs.Span("run")
	benchCluster(0.25, 2, 1, 1)
	runSpan.End()

	path := filepath.Join(t.TempDir(), "trace.json")
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	evs, err := obs.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	var run *obs.Event
	var rounds, solves []obs.Event
	for i := range evs {
		switch evs[i].Name {
		case "run":
			run = &evs[i]
		case "online.round":
			rounds = append(rounds, evs[i])
		case "lp.solve":
			solves = append(solves, evs[i])
		}
	}
	if run == nil {
		t.Fatal("trace has no run span")
	}
	// Two timed rounds plus the warm-up; every sub-solve reaches the LP.
	if len(rounds) < 3 {
		t.Fatalf("trace has %d online.round spans, want ≥ 3", len(rounds))
	}
	if len(solves) == 0 {
		t.Fatal("trace has no lp.solve spans")
	}

	for _, r := range rounds {
		if !run.Contains(r) {
			t.Fatalf("online.round [%g,%g) escapes run [%g,%g)", r.TS, r.TS+r.Dur, run.TS, run.TS+run.Dur)
		}
	}
	for _, s := range solves {
		inRound := false
		for _, r := range rounds {
			if r.Contains(s) {
				inRound = true
				break
			}
		}
		if !inRound {
			t.Fatalf("lp.solve at ts=%g dur=%g is inside no online.round", s.TS, s.Dur)
		}
	}
}
