// Command onlinebench measures the online allocation engine: per-round
// latency of the persistent-model mutation path (mutate in place, re-solve
// warm or via the dual simplex) against a cold rebuild-and-solve baseline,
// over round sequences from all three of the paper's case studies swept
// across dirty fractions (the share of clients whose data changes per
// round): cluster job churn, a full-dirty capacity-jitter sequence whose
// rhs-only deltas ride the dual simplex, lb shard-load jitter, TE
// demand-churn (amount-only shifts — again pure rhs deltas), and the
// pair-block space-sharing policy under weight churn. Each record splits
// the per-round time into model build/mutation time and LP pivot time, so
// the constant-factor win of mutate-over-rebuild is visible next to the
// pivot win of warm/dual starts. It writes a JSON regression record
// (BENCH_online.json via `make bench-online`) so every PR has an
// online-path perf trajectory to compare against.
//
// Usage:
//
//	onlinebench [-o BENCH_online.json] [-reps 3] [-rounds 6] [-seed 1] [-trace trace.json]
//
// -trace writes a Chrome trace-event JSON (chrome://tracing / Perfetto) of
// the warm engines' round spans: each online.round contains its per-partition
// online.subsolve lanes, which in turn contain splice/rebuild/refresh spans
// and the lp.solve span tree.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"time"

	"pop/internal/cluster"
	"pop/internal/lb"
	"pop/internal/lp"
	"pop/internal/obs"
	"pop/internal/online"
	"pop/internal/te"
	"pop/internal/tm"
	"pop/internal/topo"
)

// benchObs is non-nil only under -trace; the warm engines carry it so their
// rounds emit span trees into the run trace (cold baselines stay untraced).
var benchObs *obs.Observer

type record struct {
	Family        string  `json:"family"`
	Clients       int     `json:"clients"`
	K             int     `json:"k"`
	DirtyFrac     float64 `json:"dirty_frac"`
	Rounds        int     `json:"rounds"`
	ColdNsPerRnd  int64   `json:"cold_ns_per_round"`
	WarmNsPerRnd  int64   `json:"warm_ns_per_round"`
	Speedup       float64 `json:"speedup"`
	WarmSubSolves int     `json:"warm_sub_solves"`
	ColdSubSolves int     `json:"cold_sub_solves"`
	WarmHits      int     `json:"warm_hits"`
	// Per-round build (model construction/mutation) vs pivot (LP solver)
	// time split, from the engines' own accounting of the timed rounds.
	WarmBuildNs int64 `json:"warm_build_ns_per_round"`
	WarmPivotNs int64 `json:"warm_pivot_ns_per_round"`
	ColdBuildNs int64 `json:"cold_build_ns_per_round"`
	ColdPivotNs int64 `json:"cold_pivot_ns_per_round"`
	// DualPivots counts dual simplex pivots across the warm engine's timed
	// rounds — nonzero only where deltas were rhs/bound-only.
	DualPivots int  `json:"warm_dual_pivots"`
	ObjAgree   bool `json:"objectives_agree"`
	// MaxObjDelta is the largest |warm - cold| objective gap seen.
	MaxObjDelta float64 `json:"max_obj_delta"`
}

type report struct {
	GeneratedAt    string   `json:"generated_at"`
	Seed           int64    `json:"seed"`
	Reps           int      `json:"reps"`
	GeomeanSpeedup float64  `json:"geomean_speedup"`
	Records        []record `json:"records"`
}

func main() {
	var (
		out      = flag.String("o", "BENCH_online.json", "output file ('-' for stdout)")
		reps     = flag.Int("reps", 3, "sequence repetitions (best total per engine is kept)")
		rounds   = flag.Int("rounds", 6, "timed rounds per sequence")
		seed     = flag.Int64("seed", 1, "workload seed")
		traceOut = flag.String("trace", "", "write a Chrome trace-event JSON of the warm engines' round spans")
	)
	flag.Parse()

	var tr *obs.Trace
	if *traceOut != "" {
		tr = obs.NewTrace()
		benchObs = &obs.Observer{Trace: tr}
	}
	runSpan := benchObs.Span("run")

	rep := report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Seed:        *seed,
		Reps:        *reps,
	}
	fracs := []float64{0.05, 0.25, 1.0}
	for _, f := range fracs {
		rep.Records = append(rep.Records, benchCluster(f, *rounds, *reps, *seed))
	}
	rep.Records = append(rep.Records, benchCapacity(*rounds, *reps, *seed))
	for _, f := range fracs {
		rep.Records = append(rep.Records, benchLB(f, *rounds, *reps, *seed))
	}
	for _, f := range fracs {
		rep.Records = append(rep.Records, benchTE(f, *rounds, *reps, *seed))
	}
	for _, f := range fracs {
		rep.Records = append(rep.Records, benchSpaceSharing(f, *rounds, *reps, *seed))
	}
	runSpan.End()
	if tr != nil {
		if err := tr.WriteFile(*traceOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	logGeo := 0.0
	for _, r := range rep.Records {
		fmt.Fprintf(os.Stderr, "%-11s clients=%-4d k=%-2d dirty=%-5.2f cold=%-12v warm=%-12v (build %-10v pivot %-10v dual=%-4d) speedup=%.2fx agree=%v\n",
			r.Family, r.Clients, r.K, r.DirtyFrac,
			time.Duration(r.ColdNsPerRnd), time.Duration(r.WarmNsPerRnd),
			time.Duration(r.WarmBuildNs), time.Duration(r.WarmPivotNs), r.DualPivots,
			r.Speedup, r.ObjAgree)
		logGeo += math.Log(r.Speedup)
	}
	rep.GeomeanSpeedup = math.Exp(logGeo / float64(len(rep.Records)))
	fmt.Fprintf(os.Stderr, "geomean speedup: %.2fx\n", rep.GeomeanSpeedup)

	enc, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "onlinebench:", err)
		os.Exit(1)
	}
}

// split captures the engine-side accounting of a timed window.
type split struct {
	subSolves, warmHits, dualPivots int
	buildNs, solveNs                int64
}

func delta(after, before online.Stats) split {
	return split{
		subSolves:  after.SubSolves - before.SubSolves,
		warmHits:   after.WarmHits - before.WarmHits,
		dualPivots: after.DualPivots - before.DualPivots,
		buildNs:    after.BuildNs - before.BuildNs,
		solveNs:    after.SolveNs - before.SolveNs,
	}
}

// bookWarm and bookCold store the engine-side split of the best repetition
// into the record.
func bookWarm(rec *record, s split, rounds int) {
	rec.WarmSubSolves = s.subSolves
	rec.WarmHits = s.warmHits
	rec.DualPivots = s.dualPivots
	rec.WarmBuildNs = s.buildNs / int64(rounds)
	rec.WarmPivotNs = s.solveNs / int64(rounds)
}

func bookCold(rec *record, s split, rounds int) {
	rec.ColdSubSolves = s.subSolves
	rec.ColdBuildNs = s.buildNs / int64(rounds)
	rec.ColdPivotNs = s.solveNs / int64(rounds)
}

// benchCluster replays a job-churn round sequence (weight changes and
// depart+arrive churn over dirtyFrac of the jobs) against a mutate-in-place
// engine and a cold rebuild engine.
func benchCluster(dirtyFrac float64, rounds, reps int, seed int64) record {
	const nJobs, k = 192, 8
	c := cluster.NewCluster(48, 48, 48)
	rec := record{Family: "cluster", Clients: nJobs, K: k, DirtyFrac: dirtyFrac, Rounds: rounds, ObjAgree: true}
	bestWarm, bestCold := int64(math.MaxInt64), int64(math.MaxInt64)

	for rep := 0; rep < reps; rep++ {
		rng := rand.New(rand.NewSource(seed))
		jobs := cluster.GenerateJobs(nJobs, seed+2, 0.2)
		warm, err := online.NewClusterEngine(c, online.MaxMinFairness, online.Options{K: k, Obs: benchObs}, lp.Options{})
		die(err)
		cold, err := online.NewClusterEngine(c, online.MaxMinFairness, online.Options{K: k, NoWarmStart: true}, lp.Options{})
		die(err)
		nextID := nJobs
		live := make([]cluster.Job, len(jobs))
		copy(live, jobs)
		for _, j := range live {
			warm.Upsert(j)
			cold.Upsert(j)
		}
		// Untimed warm-up round: both engines reach steady state.
		die(warm.Solve())
		cold.MarkAllDirty()
		die(cold.Solve())
		warm0, cold0 := warm.Stats(), cold.Stats()

		var warmNs, coldNs int64
		for round := 0; round < rounds; round++ {
			nTouch := int(math.Max(1, dirtyFrac*nJobs))
			for t := 0; t < nTouch; t++ {
				i := rng.Intn(len(live))
				if rng.Float64() < 0.7 { // weight change
					live[i].Weight = 0.5 + rng.Float64()*2
				} else { // churn: depart + fresh arrival
					warm.Remove(live[i].ID)
					cold.Remove(live[i].ID)
					nj := cluster.GenerateJobs(1, seed+int64(nextID), 0.2)[0]
					nj.ID = nextID
					nextID++
					live[i] = nj
				}
				warm.Upsert(live[i])
				cold.Upsert(live[i])
			}
			start := time.Now()
			die(warm.Solve())
			warmNs += time.Since(start).Nanoseconds()

			start = time.Now()
			cold.MarkAllDirty()
			die(cold.Solve())
			coldNs += time.Since(start).Nanoseconds()

			if d := math.Abs(warm.Objective() - cold.Objective()); d > rec.MaxObjDelta {
				rec.MaxObjDelta = d
			}
		}
		if warmNs < bestWarm {
			bestWarm = warmNs
			bookWarm(&rec, delta(warm.Stats(), warm0), rounds)
		}
		if coldNs < bestCold {
			bestCold = coldNs
			bookCold(&rec, delta(cold.Stats(), cold0), rounds)
		}
	}
	rec.WarmNsPerRnd = bestWarm / int64(rounds)
	rec.ColdNsPerRnd = bestCold / int64(rounds)
	rec.ObjAgree = rec.MaxObjDelta <= 1e-6
	if rec.WarmNsPerRnd > 0 {
		rec.Speedup = float64(rec.ColdNsPerRnd) / float64(rec.WarmNsPerRnd)
	}
	return rec
}

// benchCapacity replays the autoscaling regime: every round the cluster's
// capacity jitters, dirtying all sub-problems at once — but the deltas are
// pure right-hand sides under MinMakespan, so the mutation engine re-solves
// each sub-problem with a handful of dual simplex pivots from the previous
// basis while the cold engine rebuilds and runs phase 1 from scratch. This
// is the full-dirty sweep the dual simplex exists for.
func benchCapacity(rounds, reps int, seed int64) record {
	const nJobs, k = 192, 8
	base := [3]float64{48, 48, 48}
	rec := record{Family: "cluster-cap", Clients: nJobs, K: k, DirtyFrac: 1, Rounds: rounds, ObjAgree: true}
	bestWarm, bestCold := int64(math.MaxInt64), int64(math.MaxInt64)

	for rep := 0; rep < reps; rep++ {
		rng := rand.New(rand.NewSource(seed + 11))
		jobs := cluster.GenerateJobs(nJobs, seed+2, 0.2)
		c := cluster.NewCluster(base[0], base[1], base[2])
		warm, err := online.NewClusterEngine(c, online.MinMakespan, online.Options{K: k, Obs: benchObs}, lp.Options{})
		die(err)
		cold, err := online.NewClusterEngine(c, online.MinMakespan, online.Options{K: k, NoWarmStart: true}, lp.Options{})
		die(err)
		for _, j := range jobs {
			warm.Upsert(j)
			cold.Upsert(j)
		}
		die(warm.Solve())
		cold.MarkAllDirty()
		die(cold.Solve())
		warm0, cold0 := warm.Stats(), cold.Stats()

		var warmNs, coldNs int64
		for round := 0; round < rounds; round++ {
			next := cluster.NewCluster(
				base[0]*(0.8+0.4*rng.Float64()),
				base[1]*(0.8+0.4*rng.Float64()),
				base[2]*(0.8+0.4*rng.Float64()))

			start := time.Now()
			warm.SetCluster(next)
			die(warm.Solve())
			warmNs += time.Since(start).Nanoseconds()

			start = time.Now()
			cold.SetCluster(next)
			cold.MarkAllDirty()
			die(cold.Solve())
			coldNs += time.Since(start).Nanoseconds()

			if d := math.Abs(warm.Objective() - cold.Objective()); d > rec.MaxObjDelta {
				rec.MaxObjDelta = d
			}
		}
		if warmNs < bestWarm {
			bestWarm = warmNs
			bookWarm(&rec, delta(warm.Stats(), warm0), rounds)
		}
		if coldNs < bestCold {
			bestCold = coldNs
			bookCold(&rec, delta(cold.Stats(), cold0), rounds)
		}
	}
	rec.WarmNsPerRnd = bestWarm / int64(rounds)
	rec.ColdNsPerRnd = bestCold / int64(rounds)
	rec.ObjAgree = rec.MaxObjDelta <= 1e-6
	if rec.WarmNsPerRnd > 0 {
		rec.Speedup = float64(rec.ColdNsPerRnd) / float64(rec.WarmNsPerRnd)
	}
	return rec
}

// benchTE replays the WAN re-planning regime: every round dirtyFrac of the
// commodities shift their demand amount over a stable topology. Under
// MaxTotalFlow an amount shift is a single rhs edit on the commodity's cap
// row, so the mutation engine re-solves each dirtied sub-problem with dual
// simplex pivots from the previous basis while the cold engine rebuilds the
// path LP and runs phase 1 from scratch.
func benchTE(dirtyFrac float64, rounds, reps int, seed int64) record {
	const nDemands, k = 192, 4
	tp := topo.GenerateScaled("Deltacom", 0.5)
	rec := record{Family: "te", Clients: nDemands, K: k, DirtyFrac: dirtyFrac, Rounds: rounds, ObjAgree: true}
	bestWarm, bestCold := int64(math.MaxInt64), int64(math.MaxInt64)

	for rep := 0; rep < reps; rep++ {
		rng := rand.New(rand.NewSource(seed + 17))
		demands := tm.Generate(tm.Config{
			Nodes: tp.G.N, Commodities: nDemands, Model: tm.Gravity,
			TotalDemand: tp.TotalCapacity() * 0.4, Seed: seed + 5,
		})
		warm, err := online.NewTEEngine(tp, te.MaxTotalFlow, 4, online.Options{K: k, Obs: benchObs}, lp.Options{})
		die(err)
		cold, err := online.NewTEEngine(tp, te.MaxTotalFlow, 4, online.Options{K: k, NoWarmStart: true}, lp.Options{})
		die(err)
		for id, d := range demands {
			warm.Upsert(id, d)
			cold.Upsert(id, d)
		}
		die(warm.Solve())
		cold.MarkAllDirty()
		die(cold.Solve())
		warm0, cold0 := warm.Stats(), cold.Stats()

		var warmNs, coldNs int64
		for round := 0; round < rounds; round++ {
			nTouch := int(math.Max(1, dirtyFrac*nDemands))
			for t := 0; t < nTouch; t++ {
				id := rng.Intn(nDemands)
				demands[id].Amount *= math.Exp(rng.NormFloat64() * 0.25)
				warm.Upsert(id, demands[id])
				cold.Upsert(id, demands[id])
			}
			start := time.Now()
			die(warm.Solve())
			warmNs += time.Since(start).Nanoseconds()

			start = time.Now()
			cold.MarkAllDirty()
			die(cold.Solve())
			coldNs += time.Since(start).Nanoseconds()

			if d := math.Abs(warm.Objective() - cold.Objective()); d > rec.MaxObjDelta {
				rec.MaxObjDelta = d
			}
		}
		if warmNs < bestWarm {
			bestWarm = warmNs
			bookWarm(&rec, delta(warm.Stats(), warm0), rounds)
		}
		if coldNs < bestCold {
			bestCold = coldNs
			bookCold(&rec, delta(cold.Stats(), cold0), rounds)
		}
	}
	rec.WarmNsPerRnd = bestWarm / int64(rounds)
	rec.ColdNsPerRnd = bestCold / int64(rounds)
	rec.ObjAgree = rec.MaxObjDelta <= 1e-6
	if rec.WarmNsPerRnd > 0 {
		rec.Speedup = float64(rec.ColdNsPerRnd) / float64(rec.WarmNsPerRnd)
	}
	return rec
}

// benchSpaceSharing replays weight churn through the pair-block
// space-sharing policy — the quadratic-variable regime of Figure 6, online:
// a weight change touches only the job's own fairness row, so the mutation
// engine patches a handful of coefficients in a model whose pair blocks it
// never rebuilds, while the cold engine reconstructs the whole O(n²/k²)
// slot enumeration every round.
func benchSpaceSharing(dirtyFrac float64, rounds, reps int, seed int64) record {
	const nJobs, k = 96, 4
	c := cluster.NewCluster(24, 24, 24)
	rec := record{Family: "spacesharing", Clients: nJobs, K: k, DirtyFrac: dirtyFrac, Rounds: rounds, ObjAgree: true}
	bestWarm, bestCold := int64(math.MaxInt64), int64(math.MaxInt64)

	for rep := 0; rep < reps; rep++ {
		rng := rand.New(rand.NewSource(seed + 23))
		jobs := cluster.GenerateJobs(nJobs, seed+2, 0.1)
		warm, err := online.NewClusterEngine(c, online.SpaceSharing, online.Options{K: k, Obs: benchObs}, lp.Options{})
		die(err)
		cold, err := online.NewClusterEngine(c, online.SpaceSharing, online.Options{K: k, NoWarmStart: true}, lp.Options{})
		die(err)
		live := make([]cluster.Job, len(jobs))
		copy(live, jobs)
		for _, j := range live {
			warm.Upsert(j)
			cold.Upsert(j)
		}
		die(warm.Solve())
		cold.MarkAllDirty()
		die(cold.Solve())
		warm0, cold0 := warm.Stats(), cold.Stats()

		var warmNs, coldNs int64
		for round := 0; round < rounds; round++ {
			nTouch := int(math.Max(1, dirtyFrac*nJobs))
			for t := 0; t < nTouch; t++ {
				i := rng.Intn(len(live))
				live[i].Weight = 0.5 + rng.Float64()*2
				warm.Upsert(live[i])
				cold.Upsert(live[i])
			}
			start := time.Now()
			die(warm.Solve())
			warmNs += time.Since(start).Nanoseconds()

			start = time.Now()
			cold.MarkAllDirty()
			die(cold.Solve())
			coldNs += time.Since(start).Nanoseconds()

			if d := math.Abs(warm.Objective() - cold.Objective()); d > rec.MaxObjDelta {
				rec.MaxObjDelta = d
			}
		}
		if warmNs < bestWarm {
			bestWarm = warmNs
			bookWarm(&rec, delta(warm.Stats(), warm0), rounds)
		}
		if coldNs < bestCold {
			bestCold = coldNs
			bookCold(&rec, delta(cold.Stats(), cold0), rounds)
		}
	}
	rec.WarmNsPerRnd = bestWarm / int64(rounds)
	rec.ColdNsPerRnd = bestCold / int64(rounds)
	rec.ObjAgree = rec.MaxObjDelta <= 1e-6
	if rec.WarmNsPerRnd > 0 {
		rec.Speedup = float64(rec.ColdNsPerRnd) / float64(rec.WarmNsPerRnd)
	}
	return rec
}

// benchLB replays a load-jitter round sequence (dirtyFrac of shard loads
// shift per round) through the shard-balancing engines; both see the warm
// engine's placement trajectory, as lb.RunRounds would feed it back.
func benchLB(dirtyFrac float64, rounds, reps int, seed int64) record {
	const nShards, nServers, k = 96, 16, 4
	rec := record{Family: "lb", Clients: nShards, K: k, DirtyFrac: dirtyFrac, Rounds: rounds, ObjAgree: true}
	bestWarm, bestCold := int64(math.MaxInt64), int64(math.MaxInt64)

	for rep := 0; rep < reps; rep++ {
		rng := rand.New(rand.NewSource(seed + 7))
		inst := lb.NewInstance(nShards, nServers, 0.05, seed+3)
		warm, err := online.NewLBEngine(online.Options{K: k, Obs: benchObs}, lp.Options{})
		die(err)
		cold, err := online.NewLBEngine(online.Options{K: k, NoWarmStart: true}, lp.Options{})
		die(err)
		a, err := warm.Step(inst)
		die(err)
		cold.MarkAllDirty()
		_, err = cold.Step(inst)
		die(err)
		inst.Placement = a.Placed
		warm0, cold0 := warm.Stats(), cold.Stats()

		var warmNs, coldNs int64
		for round := 0; round < rounds; round++ {
			nTouch := int(math.Max(1, dirtyFrac*nShards))
			for t := 0; t < nTouch; t++ {
				i := rng.Intn(nShards)
				inst.Shards[i].Load *= math.Exp(rng.NormFloat64() * 0.25)
			}
			start := time.Now()
			a, err := warm.Step(inst)
			die(err)
			warmNs += time.Since(start).Nanoseconds()

			start = time.Now()
			cold.MarkAllDirty()
			_, err = cold.Step(inst)
			die(err)
			coldNs += time.Since(start).Nanoseconds()

			if d := math.Abs(warm.Objective() - cold.Objective()); d > rec.MaxObjDelta {
				rec.MaxObjDelta = d
			}
			inst.Placement = a.Placed
		}
		if warmNs < bestWarm {
			bestWarm = warmNs
			bookWarm(&rec, delta(warm.Stats(), warm0), rounds)
		}
		if coldNs < bestCold {
			bestCold = coldNs
			bookCold(&rec, delta(cold.Stats(), cold0), rounds)
		}
	}
	rec.WarmNsPerRnd = bestWarm / int64(rounds)
	rec.ColdNsPerRnd = bestCold / int64(rounds)
	rec.ObjAgree = rec.MaxObjDelta <= 1e-6
	if rec.WarmNsPerRnd > 0 {
		rec.Speedup = float64(rec.ColdNsPerRnd) / float64(rec.WarmNsPerRnd)
	}
	return rec
}
