// Command lpbench times the lp solver's Dense and SparseLU backends on the
// case-study-shaped instances from internal/lp/gen and writes a JSON
// regression record (BENCH_lp.json via `make bench-lp`), so every PR has a
// perf trajectory to compare against. The SparseLU backend is timed twice:
// with the default Forrest–Tomlin update strategy and with the legacy
// product-form eta file, so the in-place update's per-pivot win is recorded
// against its own baseline in the same run (pivot_ns vs eta_pivot_ns).
//
// Usage:
//
//	lpbench [-o BENCH_lp.json] [-reps 3] [-seed 1] [-trace trace.json] [-metrics]
//
// -trace writes a Chrome trace-event JSON (load it in chrome://tracing or
// Perfetto) of every solve's internal spans: standardize, factor/refactor,
// phase 1/2, warm repair.
//
// -metrics dumps the run's accumulated solver counters (refactors, FT
// updates/rejects, drift/fill refactor reasons, ...) to stderr in
// Prometheus text format after the run — the same series popserver exports
// on /metrics.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"pop/internal/lp"
	"pop/internal/lp/gen"
	"pop/internal/obs"
)

// benchObs is non-nil under -trace or -metrics; solver options carry it so
// every timed solve emits its span tree and books its counters.
var benchObs *obs.Observer

type record struct {
	Instance   string  `json:"instance"`
	Rows       int     `json:"rows"`
	Cols       int     `json:"cols"`
	Nonzeros   int     `json:"nonzeros"`
	DenseNs    int64   `json:"dense_ns"`
	SparseLUNs int64   `json:"sparselu_ns"`
	EtaNs      int64   `json:"eta_ns"`
	Speedup    float64 `json:"speedup"`
	Objective  float64 `json:"objective"`
	ObjAgree   bool    `json:"objectives_agree"`
	Iterations int     `json:"iterations_sparselu"`
	IterEta    int     `json:"iterations_eta"`
	// Per-pivot solve cost of the SparseLU backend under the default
	// Forrest–Tomlin updates and under the legacy eta file: the number the
	// basis-update work lands in, independent of pivot-count changes.
	PivotNs    float64 `json:"pivot_ns"`
	EtaPivotNs float64 `json:"eta_pivot_ns"`
}

type report struct {
	GeneratedAt string   `json:"generated_at"`
	Seed        int64    `json:"seed"`
	Reps        int      `json:"reps"`
	Records     []record `json:"records"`
}

func main() {
	var (
		out      = flag.String("o", "BENCH_lp.json", "output file ('-' for stdout)")
		reps     = flag.Int("reps", 3, "timed repetitions per backend (best is kept)")
		seed     = flag.Int64("seed", 1, "instance generator seed")
		traceOut = flag.String("trace", "", "write a Chrome trace-event JSON of the run's solver spans")
		metrics  = flag.Bool("metrics", false, "dump accumulated solver metrics (Prometheus text) to stderr after the run")
	)
	flag.Parse()

	var tr *obs.Trace
	var reg *obs.Registry
	if *traceOut != "" {
		tr = obs.NewTrace()
	}
	if *metrics {
		reg = obs.NewRegistry()
	}
	if tr != nil || reg != nil {
		benchObs = &obs.Observer{Trace: tr, Metrics: reg}
	}
	runSpan := benchObs.Span("run")

	rep := report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Seed:        *seed,
		Reps:        *reps,
	}
	for _, in := range gen.All(*seed) {
		r := record{
			Instance: in.Name(),
			Rows:     in.P.NumConstraints(),
			Cols:     in.P.NumVariables(),
			Nonzeros: in.P.NumNonzeros(),
		}
		var dObj, sObj, eObj float64
		r.DenseNs, dObj, _ = timeSolve(in.P, lp.Options{Backend: lp.Dense}, *reps)
		r.SparseLUNs, sObj, r.Iterations = timeSolve(in.P, lp.Options{Backend: lp.SparseLU}, *reps)
		r.EtaNs, eObj, r.IterEta = timeSolve(in.P, lp.Options{Backend: lp.SparseLU, Update: lp.EtaUpdate}, *reps)
		r.Objective = sObj
		r.ObjAgree = approxEq(dObj, sObj, 1e-6) && approxEq(eObj, sObj, 1e-6)
		if r.SparseLUNs > 0 {
			r.Speedup = float64(r.DenseNs) / float64(r.SparseLUNs)
		}
		if r.Iterations > 0 {
			r.PivotNs = float64(r.SparseLUNs) / float64(r.Iterations)
		}
		if r.IterEta > 0 {
			r.EtaPivotNs = float64(r.EtaNs) / float64(r.IterEta)
		}
		fmt.Fprintf(os.Stderr, "%-16s rows=%-5d dense=%-12v sparselu=%-12v eta=%-12v speedup=%.2fx pivot=%.0fns/%.0fns agree=%v\n",
			r.Instance, r.Rows, time.Duration(r.DenseNs), time.Duration(r.SparseLUNs), time.Duration(r.EtaNs),
			r.Speedup, r.PivotNs, r.EtaPivotNs, r.ObjAgree)
		rep.Records = append(rep.Records, r)
	}
	runSpan.End()
	if tr != nil {
		if err := tr.WriteFile(*traceOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	enc, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if reg != nil {
		reg.WritePrometheus(os.Stderr)
	}
}

// timeSolve returns the best wall time over reps solves, plus the objective
// and iteration count for cross-checking.
func timeSolve(p *lp.Problem, opts lp.Options, reps int) (ns int64, obj float64, iters int) {
	opts.Obs = benchObs
	best := int64(1<<63 - 1)
	for i := 0; i < reps; i++ {
		start := time.Now()
		sol, err := p.SolveWithOptions(opts)
		el := time.Since(start).Nanoseconds()
		if err != nil {
			fmt.Fprintf(os.Stderr, "lpbench: %v backend failed: %v\n", opts.Backend, err)
			os.Exit(1)
		}
		if sol.Status != lp.Optimal {
			fmt.Fprintf(os.Stderr, "lpbench: %v backend failed: status=%v\n", opts.Backend, sol.Status)
			os.Exit(1)
		}
		if el < best {
			best = el
		}
		obj = sol.Objective
		iters = sol.Iterations
	}
	return best, obj, iters
}

func approxEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}
