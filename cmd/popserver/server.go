package main

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pop/internal/cluster"
	"pop/internal/lp"
	"pop/internal/obs"
	"pop/internal/online"
	"pop/internal/price"
)

// jobSpec is the wire format of a job submission.
type jobSpec struct {
	ID         int       `json:"id"`
	Throughput []float64 `json:"throughput"`
	Weight     float64   `json:"weight,omitempty"`
	Scale      float64   `json:"scale,omitempty"`
	NumSteps   float64   `json:"num_steps,omitempty"`
	MemFrac    float64   `json:"mem_frac,omitempty"`
}

// jobAlloc is one job's slice of the current allocation snapshot. X is the
// solo time fraction per GPU type; under the space-sharing policy jobs run
// in shared slots instead, so X is omitted and EffThr already folds in the
// interference factors.
type jobAlloc struct {
	ID     int       `json:"id"`
	X      []float64 `json:"x,omitempty"` // time fraction per GPU type
	EffThr float64   `json:"effective_throughput"`
}

// snapshot is the allocation as of the last completed round, plus the
// engine counters frozen at that instant (so stats reads never have to
// touch the engine while a round is solving).
type snapshot struct {
	Round       int                 `json:"round"`
	ComputedAt  time.Time           `json:"computed_at"`
	SolveTimeMs float64             `json:"solve_time_ms"`
	NumJobs     int                 `json:"num_jobs"`
	Jobs        map[string]jobAlloc `json:"jobs"`

	engStats   online.Stats
	priceStats price.Stats
}

// mutation is one buffered state change (submit or remove).
type mutation struct {
	submit *cluster.Job
	remove int
}

// roundEngine is the per-round surface the server drives: both the
// incremental LP engine (online.ClusterEngine) and the price-discovery
// engine (price.ClusterEngine) satisfy it.
type roundEngine interface {
	Upsert(cluster.Job)
	Remove(id int) bool
	Jobs() []cluster.Job
	Step(active []cluster.Job, c cluster.Cluster) (*cluster.Allocation, error)
}

// server batches mutations between rounds and re-solves the engine once per
// round — the per-round request batching the online engine is built for.
// mu guards only the cheap shared state (pending queue, last snapshot), so
// submissions and reads never wait on a solve; engMu serializes rounds,
// which are the only engine access.
type server struct {
	mu      sync.Mutex
	pending []mutation
	snap    snapshot

	engMu sync.Mutex
	eng   roundEngine
	// exactly one of lpEng/prEng is set (and aliased by eng); engineKind
	// names the active one for /v1/stats.
	lpEng      *online.ClusterEngine
	prEng      *price.ClusterEngine
	engineKind string

	c       cluster.Cluster
	started time.Time

	// reg is the server's metrics registry (GET /metrics); the engine and
	// its LP sub-solves book into it through the observer installed at
	// construction. round mirrors snap.Round atomically so the request
	// middleware can stamp X-Pop-Round without taking mu.
	reg   *obs.Registry
	log   *slog.Logger
	round atomic.Int64
}

// newServer builds the daemon around the engine the policy string selects:
// "maxmin", "makespan", and "spacesharing" run the incremental LP engine,
// "price" the solver-free price-discovery engine (max-min objective).
func newServer(c cluster.Cluster, policy string, opts online.Options, logger *slog.Logger) (*server, error) {
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	reg := obs.NewRegistry()
	if opts.Obs == nil {
		opts.Obs = &obs.Observer{Metrics: reg}
	} else if opts.Obs.Metrics != nil {
		reg = opts.Obs.Metrics // caller-supplied registry backs /metrics too
	}
	s := &server{
		c:       c,
		snap:    snapshot{Jobs: map[string]jobAlloc{}},
		started: time.Now(),
		reg:     reg,
		log:     logger,
	}
	switch strings.ToLower(policy) {
	case "price":
		eng, err := price.NewClusterEngine(c, price.MaxMinFairness, price.EngineOptions{
			Solver: price.Options{Parallel: opts.Parallel, Obs: opts.Obs},
		})
		if err != nil {
			return nil, err
		}
		s.prEng, s.eng, s.engineKind = eng, eng, "price"
		return s, nil
	case "maxmin", "max-min", "makespan", "min-makespan", "spacesharing", "space-sharing":
		var lpPolicy online.ClusterPolicy
		switch strings.ToLower(policy) {
		case "maxmin", "max-min":
			lpPolicy = online.MaxMinFairness
		case "makespan", "min-makespan":
			lpPolicy = online.MinMakespan
		default:
			lpPolicy = online.SpaceSharing
		}
		eng, err := online.NewClusterEngine(c, lpPolicy, opts, lp.Options{})
		if err != nil {
			return nil, err
		}
		s.lpEng, s.eng, s.engineKind = eng, eng, "lp"
		return s, nil
	}
	return nil, fmt.Errorf("unknown policy %q (want maxmin|makespan|spacesharing|price)", policy)
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleRemove)
	mux.HandleFunc("PUT /v1/cluster", s.handleSetCluster)
	mux.HandleFunc("POST /v1/tick", s.handleTick)
	mux.HandleFunc("GET /v1/allocation", s.handleAllocation)
	mux.HandleFunc("GET /v1/allocation/{id}", s.handleAllocationOne)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"ok": true})
	})
	return s.instrument(mux)
}

// handleMetrics serves the registry in Prometheus text exposition format.
func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w)
}

// statusRecorder captures the status code the handler wrote (200 when it
// never called WriteHeader explicitly).
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps the mux with per-endpoint latency histograms and request
// counters, stamps every response with the monotonic round counter, and
// emits a debug-level structured log line per request.
func (s *server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		w.Header().Set("X-Pop-Round", strconv.FormatInt(s.round.Load(), 10))
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(rec, r)
		dur := time.Since(start)

		// The registered pattern ("POST /v1/jobs") keeps the label
		// cardinality fixed regardless of path parameters; unmatched
		// requests collapse into one bucket.
		path := r.Pattern
		if i := strings.IndexByte(path, ' '); i >= 0 {
			path = path[i+1:]
		}
		if path == "" {
			path = "unmatched"
		}
		s.reg.Histogram(`pop_http_request_seconds{path="`+path+`"}`,
			"HTTP request latency by endpoint", nil).Observe(dur.Seconds())
		s.reg.Counter(`pop_http_requests_total{path="`+path+`",code="`+strconv.Itoa(rec.code)+`"}`,
			"HTTP requests by endpoint and status").Inc()
		s.log.Debug("request",
			"method", r.Method, "path", r.URL.Path, "status", rec.code,
			"duration_ms", float64(dur.Microseconds())/1000)
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec jobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, "bad job spec: %v", err)
		return
	}
	if spec.ID < 0 {
		writeErr(w, http.StatusBadRequest, "id must be non-negative")
		return
	}
	s.mu.Lock()
	numTypes := s.c.NumTypes()
	s.mu.Unlock()
	if len(spec.Throughput) != numTypes {
		writeErr(w, http.StatusBadRequest, "throughput must have %d entries (one per GPU type)", numTypes)
		return
	}
	for _, t := range spec.Throughput {
		if t < 0 {
			writeErr(w, http.StatusBadRequest, "throughputs must be non-negative")
			return
		}
	}
	job := cluster.Job{
		ID:         spec.ID,
		Throughput: spec.Throughput,
		Weight:     spec.Weight,
		Scale:      spec.Scale,
		NumSteps:   spec.NumSteps,
		MemFrac:    spec.MemFrac,
		Priority:   1,
	}
	if job.Weight <= 0 {
		job.Weight = 1
	}
	if job.Scale <= 0 {
		job.Scale = 1
	}
	if job.NumSteps <= 0 {
		job.NumSteps = 1
	}

	s.mu.Lock()
	s.pending = append(s.pending, mutation{submit: &job})
	n := len(s.pending)
	s.mu.Unlock()
	writeJSON(w, http.StatusAccepted, map[string]any{"queued": true, "pending": n})
}

func (s *server) handleRemove(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad id: %v", err)
		return
	}
	s.mu.Lock()
	s.pending = append(s.pending, mutation{submit: nil, remove: id})
	n := len(s.pending)
	s.mu.Unlock()
	writeJSON(w, http.StatusAccepted, map[string]any{"queued": true, "pending": n})
}

// clusterSpec is the wire format of a resource-capacity update.
type clusterSpec struct {
	GPUs []float64 `json:"gpus"`
}

// handleSetCluster installs new per-type GPU capacities (the autoscaling
// path). The change takes effect at the next round, where it dirties every
// sub-problem; under MinMakespan the deltas are pure right-hand sides, so
// the re-solves ride the dual simplex. The type set is fixed at startup —
// jobs are validated against it — so the capacity vector must keep its
// length.
func (s *server) handleSetCluster(w http.ResponseWriter, r *http.Request) {
	var spec clusterSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, "bad cluster spec: %v", err)
		return
	}
	// The type count is fixed at startup (every accepted PUT preserves it),
	// so validating against a snapshot then writing under a fresh lock stays
	// consistent.
	s.mu.Lock()
	numTypes := s.c.NumTypes()
	s.mu.Unlock()
	if len(spec.GPUs) != numTypes {
		writeErr(w, http.StatusBadRequest, "gpus must have %d entries (one per GPU type)", numTypes)
		return
	}
	for _, g := range spec.GPUs {
		if g < 0 {
			writeErr(w, http.StatusBadRequest, "GPU counts must be non-negative")
			return
		}
	}
	s.mu.Lock()
	s.c = cluster.Cluster{
		TypeNames: s.c.TypeNames,
		NumGPUs:   append([]float64(nil), spec.GPUs...),
	}
	c := s.c
	round := s.snap.Round
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"gpu_types": c.TypeNames, "gpus": c.NumGPUs, "effective_after_round": round,
	})
}

// drain blocks until no scheduling round holds the engine — the graceful
// shutdown barrier: once it returns (with the ticker stopped and the HTTP
// server shut down), no round is in flight and none can start.
func (s *server) drain() {
	s.engMu.Lock()
	//lint:ignore SA2001 acquiring engMu is the barrier; nothing to do inside
	s.engMu.Unlock()
}

// tick applies the batched mutations and re-solves the dirtied
// sub-problems. It is called by the round ticker (or POST /v1/tick).
func (s *server) tick() (snapshot, error) {
	s.engMu.Lock()
	defer s.engMu.Unlock()

	s.mu.Lock()
	pending := s.pending
	s.pending = nil
	round := s.snap.Round
	c := s.c
	s.mu.Unlock()

	for _, m := range pending {
		if m.submit != nil {
			s.eng.Upsert(*m.submit)
		} else {
			s.eng.Remove(m.remove)
		}
	}

	start := time.Now()
	jobs := s.eng.Jobs()
	snap := snapshot{
		Round:      round + 1,
		ComputedAt: time.Now().UTC(),
		NumJobs:    len(jobs),
		Jobs:       make(map[string]jobAlloc, len(jobs)),
	}
	if len(jobs) > 0 {
		alloc, err := s.eng.Step(jobs, c)
		if err != nil {
			// The mutations were applied; only the snapshot is lost.
			return snapshot{}, err
		}
		for i, j := range jobs {
			ja := jobAlloc{ID: j.ID, EffThr: alloc.EffThr[i]}
			if alloc.X != nil {
				ja.X = alloc.X[i]
			}
			snap.Jobs[strconv.Itoa(j.ID)] = ja
		}
	}
	snap.SolveTimeMs = float64(time.Since(start).Microseconds()) / 1000
	if s.lpEng != nil {
		snap.engStats = s.lpEng.Stats()
	}
	if s.prEng != nil {
		snap.priceStats = s.prEng.Stats()
	}

	s.mu.Lock()
	s.snap = snap
	queued := len(s.pending)
	s.mu.Unlock()
	s.round.Store(int64(snap.Round))

	s.reg.Counter("pop_rounds_total", "completed scheduling rounds").Inc()
	s.reg.Histogram("pop_round_seconds", "scheduling round wall time", nil).
		Observe(snap.SolveTimeMs / 1000)
	s.reg.Gauge("pop_jobs", "jobs in the last completed round").Set(float64(snap.NumJobs))
	s.reg.Gauge("pop_pending_mutations", "mutations queued for the next round").Set(float64(queued))
	s.log.Info("round",
		"round", snap.Round, "jobs", snap.NumJobs,
		"solve_ms", snap.SolveTimeMs, "applied", len(pending))
	return snap, nil
}

func (s *server) handleTick(w http.ResponseWriter, _ *http.Request) {
	snap, err := s.tick()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "round failed: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"round": snap.Round, "num_jobs": snap.NumJobs, "solve_time_ms": snap.SolveTimeMs,
	})
}

func (s *server) handleAllocation(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	snap := s.snap
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, snap)
}

func (s *server) handleAllocationOne(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ja, ok := s.snap.Jobs[r.PathValue("id")]
	round := s.snap.Round
	s.mu.Unlock()
	if !ok {
		writeErr(w, http.StatusNotFound, "job %s has no allocation (round %d)", r.PathValue("id"), round)
		return
	}
	writeJSON(w, http.StatusOK, ja)
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	st := s.snap.engStats
	resp := map[string]any{
		"uptime_seconds": time.Since(s.started).Seconds(),
		"round":          s.snap.Round,
		"num_jobs":       s.snap.NumJobs,
		"pending":        len(s.pending),
		"gpu_types":      s.c.TypeNames,
		"gpus":           s.c.NumGPUs,
		"engine_kind":    s.engineKind,
		// engine marshals through online.Stats' JSON tags, so a field added
		// there lands here without a matching edit.
		"engine": st,
		// price mirrors the price engine's counters through price.Stats' JSON
		// tags; all-zero under the LP engines, included unconditionally so
		// clients see a stable schema.
		"price": s.snap.priceStats,
		// search mirrors milp.SearchStats from the registry's counters. The
		// bundled cluster policies are pure LPs, so these stay zero unless a
		// MILP-backed policy runs with the server's observer; they are
		// included unconditionally so clients see a stable schema.
		"search": map[string]any{
			"nodes":            s.reg.Counter("pop_milp_nodes_total", "").Value(),
			"warm_nodes":       s.reg.Counter("pop_milp_warm_nodes_total", "").Value(),
			"cold_fallbacks":   s.reg.Counter("pop_milp_cold_fallbacks_total", "").Value(),
			"heuristic_solves": s.reg.Counter("pop_milp_heuristic_solves_total", "").Value(),
			"lp_pivots":        s.reg.Counter("pop_milp_lp_pivots_total", "").Value(),
			"dual_pivots":      s.reg.Counter("pop_milp_dual_pivots_total", "").Value(),
		},
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}
