package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pop/internal/cluster"
	"pop/internal/obs"
	"pop/internal/online"
	"pop/internal/price"
	"pop/internal/shard"
)

// jobSpec is the wire format of a job submission.
type jobSpec struct {
	ID         int       `json:"id"`
	Throughput []float64 `json:"throughput"`
	Weight     float64   `json:"weight,omitempty"`
	Scale      float64   `json:"scale,omitempty"`
	NumSteps   float64   `json:"num_steps,omitempty"`
	MemFrac    float64   `json:"mem_frac,omitempty"`
}

// jobAlloc is one job's slice of the current allocation snapshot. X is the
// solo time fraction per GPU type; under the space-sharing policy jobs run
// in shared slots instead, so X is omitted and EffThr already folds in the
// interference factors. Stale marks a row carried over from an earlier
// round because the job's shard worker missed the round deadline.
type jobAlloc struct {
	ID     int       `json:"id"`
	X      []float64 `json:"x,omitempty"` // time fraction per GPU type
	EffThr float64   `json:"effective_throughput"`
	Stale  bool      `json:"stale,omitempty"`
}

// snapshot is the allocation as of the last completed round, plus the
// engine counters frozen at that instant (so stats reads never have to
// touch the engine while a round is solving).
type snapshot struct {
	Round       int                 `json:"round"`
	ComputedAt  time.Time           `json:"computed_at"`
	SolveTimeMs float64             `json:"solve_time_ms"`
	NumJobs     int                 `json:"num_jobs"`
	StaleJobs   int                 `json:"stale_jobs,omitempty"`
	Jobs        map[string]jobAlloc `json:"jobs"`

	engStats   online.Stats
	priceStats price.Stats
	shardStats []shard.WorkerStatus
}

// mutation is one buffered state change (submit or remove).
type mutation struct {
	submit *cluster.Job
	remove int
}

// serverConfig selects the server's deployment shape and hardening knobs.
type serverConfig struct {
	// policy is maxmin | makespan | spacesharing | price.
	policy string
	// opts tune the in-process engine (ignored in coordinator mode, where
	// the workers own the engines).
	opts online.Options
	// workers, when non-empty, runs the server as a shard coordinator over
	// these worker base URLs instead of an in-process engine.
	workers []string
	// deadline bounds a sharded round's scatter/gather (0 = 10s).
	deadline time.Duration
	// authToken, when non-empty, is required (as a bearer token) on every
	// mutating endpoint and stamped on coordinator→worker requests.
	authToken shard.Token
	// quota caps per-tenant job submissions per round (X-Pop-Tenant header,
	// "default" when absent); exceeding it answers 429. 0 = unlimited.
	quota int
	// stateFile persists the in-process engine's warm state across restarts
	// (single-process mode only; workers have their own -state-file).
	stateFile string
}

// server batches mutations between rounds and re-solves the engine once per
// round — the per-round request batching the online engine is built for.
// mu guards only the cheap shared state (pending queue, last snapshot,
// tenant quotas), so submissions and reads never wait on a solve; engMu
// serializes rounds, which are the only engine access.
type server struct {
	cfg serverConfig

	mu      sync.Mutex
	pending []mutation
	snap    snapshot
	tenants map[string]int // submissions per tenant since the last round

	engMu sync.Mutex
	eng   shard.Engine
	// Exactly one of bundle/coord is set: bundle wraps the in-process engine
	// (with its stats/snapshot hooks), coord fans rounds out to shard
	// workers. engineKind is "lp", "price", or "sharded" for /v1/stats.
	bundle     *shard.EngineBundle
	coord      *shard.Coordinator
	engineKind string

	c       cluster.Cluster
	started time.Time

	// reg is the server's metrics registry (GET /metrics); the engine and
	// its LP sub-solves book into it through the observer installed at
	// construction. round mirrors snap.Round atomically so the request
	// middleware can stamp X-Pop-Round without taking mu.
	reg    *obs.Registry
	log    *slog.Logger
	round  atomic.Int64
	saving atomic.Bool
}

// newServer builds the daemon. With cfg.workers empty it constructs the
// policy-selected in-process engine ("maxmin", "makespan", "spacesharing"
// run the incremental LP engine, "price" the solver-free price-discovery
// engine) and, when cfg.stateFile names an existing snapshot, restores its
// warm state. With cfg.workers set it becomes a shard coordinator: clients
// are consistent-hashed onto the workers and every round is a
// scatter/gather across them.
func newServer(c cluster.Cluster, cfg serverConfig, logger *slog.Logger) (*server, error) {
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	reg := obs.NewRegistry()
	if cfg.opts.Obs == nil {
		cfg.opts.Obs = &obs.Observer{Metrics: reg}
	} else if cfg.opts.Obs.Metrics != nil {
		reg = cfg.opts.Obs.Metrics // caller-supplied registry backs /metrics too
	}
	s := &server{
		cfg:     cfg,
		c:       c,
		snap:    snapshot{Jobs: map[string]jobAlloc{}},
		tenants: map[string]int{},
		started: time.Now(),
		reg:     reg,
		log:     logger,
	}
	if len(cfg.workers) > 0 {
		coord, err := shard.NewCoordinator(cfg.workers, shard.CoordinatorOptions{
			Deadline: cfg.deadline,
			Token:    cfg.authToken,
			Obs:      cfg.opts.Obs,
			Log:      logger,
		})
		if err != nil {
			return nil, err
		}
		s.coord, s.eng, s.engineKind = coord, coord, "sharded"
		return s, nil
	}
	b, err := shard.NewEngine(c, shard.EngineConfig{
		Policy:    cfg.policy,
		K:         cfg.opts.K,
		Parallel:  cfg.opts.Parallel,
		Rebalance: cfg.opts.Rebalance,
		Obs:       cfg.opts.Obs,
	})
	if err != nil {
		return nil, err
	}
	s.bundle, s.eng, s.engineKind = b, b.Engine, b.Kind
	if cfg.stateFile != "" {
		s.restoreState()
	}
	return s, nil
}

// serverState is the on-disk shape of a single-process -state-file.
type serverState struct {
	Round  int             `json:"round"`
	Engine json.RawMessage `json:"engine"`
}

func (s *server) restoreState() {
	raw, err := os.ReadFile(s.cfg.stateFile)
	if err != nil {
		if !os.IsNotExist(err) {
			s.log.Warn("state file unreadable; starting fresh", "file", s.cfg.stateFile, "err", err)
		}
		return
	}
	var st serverState
	if err := json.Unmarshal(raw, &st); err != nil {
		s.log.Warn("state file corrupt; starting fresh", "file", s.cfg.stateFile, "err", err)
		return
	}
	if err := s.bundle.Restore(st.Engine); err != nil {
		s.log.Warn("state restore rejected; starting fresh", "file", s.cfg.stateFile, "err", err)
		return
	}
	s.snap.Round = st.Round
	s.round.Store(int64(st.Round))
	s.log.Info("state restored", "file", s.cfg.stateFile, "round", st.Round, "jobs", len(s.eng.Jobs()))
}

// snapshotState marshals the engine state (caller holds engMu).
func (s *server) snapshotState(round int) ([]byte, error) {
	eng, err := s.bundle.Snapshot()
	if err != nil {
		return nil, err
	}
	return json.Marshal(serverState{Round: round, Engine: eng})
}

// saveStateAsync checkpoints after a round without blocking the next one:
// the snapshot is taken synchronously (cheap struct copies, caller holds
// engMu), the file write happens in the background, and at most one write
// is in flight (a newer round's state supersedes, it never queues).
func (s *server) saveStateAsync(round int) {
	if s.cfg.stateFile == "" || s.bundle == nil || !s.saving.CompareAndSwap(false, true) {
		return
	}
	st, err := s.snapshotState(round)
	if err != nil {
		s.saving.Store(false)
		s.log.Warn("state snapshot failed", "err", err)
		return
	}
	go func() {
		defer s.saving.Store(false)
		if err := writeFileAtomic(s.cfg.stateFile, st); err != nil {
			s.log.Warn("state save failed", "err", err)
		}
	}()
}

// saveState synchronously persists the engine state (shutdown barrier;
// called after drain, so no round holds the engine).
func (s *server) saveState() error {
	if s.cfg.stateFile == "" || s.bundle == nil {
		return nil
	}
	s.engMu.Lock()
	st, err := s.snapshotState(int(s.round.Load()))
	s.engMu.Unlock()
	if err != nil {
		return err
	}
	return writeFileAtomic(s.cfg.stateFile, st)
}

func writeFileAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepathDir(path), ".state-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	return os.Rename(name, path)
}

func filepathDir(path string) string {
	if i := strings.LastIndexByte(path, os.PathSeparator); i > 0 {
		return path[:i]
	}
	return "."
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	auth := s.cfg.authToken.Middleware
	// Mutating endpoints sit behind the bearer token (a no-op middleware
	// when no token is configured); reads and probes stay open.
	mux.Handle("POST /v1/jobs", auth(http.HandlerFunc(s.handleSubmit)))
	mux.Handle("DELETE /v1/jobs/{id}", auth(http.HandlerFunc(s.handleRemove)))
	mux.Handle("PUT /v1/cluster", auth(http.HandlerFunc(s.handleSetCluster)))
	mux.Handle("POST /v1/tick", auth(http.HandlerFunc(s.handleTick)))
	mux.HandleFunc("GET /v1/allocation", s.handleAllocation)
	mux.HandleFunc("GET /v1/allocation/{id}", s.handleAllocationOne)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"ok": true})
	})
	return s.instrument(mux)
}

// handleMetrics serves the registry in Prometheus text exposition format.
func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w)
}

// statusRecorder captures the status code the handler wrote (200 when it
// never called WriteHeader explicitly).
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps the mux with per-endpoint latency histograms and request
// counters, stamps every response with the monotonic round counter, and
// emits a debug-level structured log line per request.
func (s *server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		w.Header().Set("X-Pop-Round", strconv.FormatInt(s.round.Load(), 10))
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(rec, r)
		dur := time.Since(start)

		// The registered pattern ("POST /v1/jobs") keeps the label
		// cardinality fixed regardless of path parameters; unmatched
		// requests collapse into one bucket.
		path := r.Pattern
		if i := strings.IndexByte(path, ' '); i >= 0 {
			path = path[i+1:]
		}
		if path == "" {
			path = "unmatched"
		}
		s.reg.Histogram(`pop_http_request_seconds{path="`+path+`"}`,
			"HTTP request latency by endpoint", nil).Observe(dur.Seconds())
		s.reg.Counter(`pop_http_requests_total{path="`+path+`",code="`+strconv.Itoa(rec.code)+`"}`,
			"HTTP requests by endpoint and status").Inc()
		s.log.Debug("request",
			"method", r.Method, "path", r.URL.Path, "status", rec.code,
			"duration_ms", float64(dur.Microseconds())/1000)
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// validateSpec checks one submission and normalizes it into a cluster.Job.
func (s *server) validateSpec(spec jobSpec, numTypes int) (cluster.Job, error) {
	if spec.ID < 0 {
		return cluster.Job{}, fmt.Errorf("id must be non-negative")
	}
	if len(spec.Throughput) != numTypes {
		return cluster.Job{}, fmt.Errorf("throughput must have %d entries (one per GPU type)", numTypes)
	}
	for _, t := range spec.Throughput {
		if t < 0 {
			return cluster.Job{}, fmt.Errorf("throughputs must be non-negative")
		}
	}
	job := cluster.Job{
		ID:         spec.ID,
		Throughput: spec.Throughput,
		Weight:     spec.Weight,
		Scale:      spec.Scale,
		NumSteps:   spec.NumSteps,
		MemFrac:    spec.MemFrac,
		Priority:   1,
	}
	if job.Weight <= 0 {
		job.Weight = 1
	}
	if job.Scale <= 0 {
		job.Scale = 1
	}
	if job.NumSteps <= 0 {
		job.NumSteps = 1
	}
	return job, nil
}

// handleSubmit accepts one job spec or a JSON array of them (the batch
// path high-churn clients use to amortize request overhead). Submissions
// count against the caller's per-tenant round quota.
func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 64<<20))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	var specs []jobSpec
	if trimmed := bytes.TrimSpace(body); len(trimmed) > 0 && trimmed[0] == '[' {
		if err := json.Unmarshal(trimmed, &specs); err != nil {
			writeErr(w, http.StatusBadRequest, "bad job batch: %v", err)
			return
		}
	} else {
		var spec jobSpec
		if err := json.Unmarshal(body, &spec); err != nil {
			writeErr(w, http.StatusBadRequest, "bad job spec: %v", err)
			return
		}
		specs = []jobSpec{spec}
	}

	s.mu.Lock()
	numTypes := s.c.NumTypes()
	s.mu.Unlock()
	jobs := make([]cluster.Job, len(specs))
	for i, spec := range specs {
		job, err := s.validateSpec(spec, numTypes)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "job %d: %v", spec.ID, err)
			return
		}
		jobs[i] = job
	}

	tenant := r.Header.Get("X-Pop-Tenant")
	if tenant == "" {
		tenant = "default"
	}
	s.mu.Lock()
	if q := s.cfg.quota; q > 0 && s.tenants[tenant]+len(jobs) > q {
		used := s.tenants[tenant]
		s.mu.Unlock()
		s.reg.Counter("pop_quota_rejections_total", "submissions rejected by the per-tenant round quota").Inc()
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusTooManyRequests,
			"tenant %q over quota: %d submitted + %d requested > %d per round", tenant, used, len(jobs), q)
		return
	}
	s.tenants[tenant] += len(jobs)
	for i := range jobs {
		s.pending = append(s.pending, mutation{submit: &jobs[i]})
	}
	n := len(s.pending)
	s.mu.Unlock()
	writeJSON(w, http.StatusAccepted, map[string]any{"queued": true, "accepted": len(jobs), "pending": n})
}

func (s *server) handleRemove(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad id: %v", err)
		return
	}
	s.mu.Lock()
	s.pending = append(s.pending, mutation{submit: nil, remove: id})
	n := len(s.pending)
	s.mu.Unlock()
	writeJSON(w, http.StatusAccepted, map[string]any{"queued": true, "pending": n})
}

// clusterSpec is the wire format of a resource-capacity update.
type clusterSpec struct {
	GPUs []float64 `json:"gpus"`
}

// handleSetCluster installs new per-type GPU capacities (the autoscaling
// path). The change takes effect at the next round, where it dirties every
// sub-problem; under MinMakespan the deltas are pure right-hand sides, so
// the re-solves ride the dual simplex. The type set is fixed at startup —
// jobs are validated against it — so the capacity vector must keep its
// length.
func (s *server) handleSetCluster(w http.ResponseWriter, r *http.Request) {
	var spec clusterSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, "bad cluster spec: %v", err)
		return
	}
	// The type count is fixed at startup (every accepted PUT preserves it),
	// so validating against a snapshot then writing under a fresh lock stays
	// consistent.
	s.mu.Lock()
	numTypes := s.c.NumTypes()
	s.mu.Unlock()
	if len(spec.GPUs) != numTypes {
		writeErr(w, http.StatusBadRequest, "gpus must have %d entries (one per GPU type)", numTypes)
		return
	}
	for _, g := range spec.GPUs {
		if g < 0 {
			writeErr(w, http.StatusBadRequest, "GPU counts must be non-negative")
			return
		}
	}
	s.mu.Lock()
	s.c = cluster.Cluster{
		TypeNames: s.c.TypeNames,
		NumGPUs:   append([]float64(nil), spec.GPUs...),
	}
	c := s.c
	round := s.snap.Round
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"gpu_types": c.TypeNames, "gpus": c.NumGPUs, "effective_after_round": round,
	})
}

// drain blocks until no scheduling round holds the engine — the graceful
// shutdown barrier: once it returns (with the ticker stopped and the HTTP
// server shut down), no round is in flight and none can start.
func (s *server) drain() {
	s.engMu.Lock()
	//lint:ignore SA2001 acquiring engMu is the barrier; nothing to do inside
	s.engMu.Unlock()
}

// tick applies the batched mutations and re-solves the dirtied
// sub-problems (or, in coordinator mode, scatters the round over the shard
// workers and gathers their allocations). It is called by the round ticker
// (or POST /v1/tick).
func (s *server) tick() (snapshot, error) {
	s.engMu.Lock()
	defer s.engMu.Unlock()

	s.mu.Lock()
	pending := s.pending
	s.pending = nil
	s.tenants = map[string]int{} // per-round quota window
	round := s.snap.Round
	c := s.c
	s.mu.Unlock()

	for _, m := range pending {
		if m.submit != nil {
			s.eng.Upsert(*m.submit)
		} else {
			s.eng.Remove(m.remove)
		}
	}

	start := time.Now()
	jobs := s.eng.Jobs()
	snap := snapshot{
		Round:      round + 1,
		ComputedAt: time.Now().UTC(),
		NumJobs:    len(jobs),
		Jobs:       make(map[string]jobAlloc, len(jobs)),
	}
	if len(jobs) > 0 {
		alloc, err := s.eng.Step(jobs, c)
		if err != nil {
			// The mutations were applied; only the snapshot is lost.
			return snapshot{}, err
		}
		var staleMask []bool
		if s.coord != nil {
			staleMask = s.coord.LastStale()
			snap.StaleJobs = s.coord.StaleJobs()
		}
		for i, j := range jobs {
			ja := jobAlloc{ID: j.ID, EffThr: alloc.EffThr[i]}
			if alloc.X != nil {
				ja.X = alloc.X[i]
			}
			if i < len(staleMask) {
				ja.Stale = staleMask[i]
			}
			snap.Jobs[strconv.Itoa(j.ID)] = ja
		}
	}
	snap.SolveTimeMs = float64(time.Since(start).Microseconds()) / 1000
	if s.bundle != nil {
		switch st := s.bundle.Stats().(type) {
		case online.Stats:
			snap.engStats = st
		case price.Stats:
			snap.priceStats = st
		}
	}
	if s.coord != nil {
		snap.shardStats = s.coord.Status()
	}

	s.mu.Lock()
	s.snap = snap
	queued := len(s.pending)
	s.mu.Unlock()
	s.round.Store(int64(snap.Round))
	s.saveStateAsync(snap.Round)

	s.reg.Counter("pop_rounds_total", "completed scheduling rounds").Inc()
	s.reg.Histogram("pop_round_seconds", "scheduling round wall time", nil).
		Observe(snap.SolveTimeMs / 1000)
	s.reg.Gauge("pop_jobs", "jobs in the last completed round").Set(float64(snap.NumJobs))
	s.reg.Gauge("pop_pending_mutations", "mutations queued for the next round").Set(float64(queued))
	s.log.Info("round",
		"round", snap.Round, "jobs", snap.NumJobs, "stale", snap.StaleJobs,
		"solve_ms", snap.SolveTimeMs, "applied", len(pending))
	return snap, nil
}

func (s *server) handleTick(w http.ResponseWriter, _ *http.Request) {
	snap, err := s.tick()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "round failed: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"round": snap.Round, "num_jobs": snap.NumJobs, "stale_jobs": snap.StaleJobs,
		"solve_time_ms": snap.SolveTimeMs,
	})
}

func (s *server) handleAllocation(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	snap := s.snap
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, snap)
}

func (s *server) handleAllocationOne(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ja, ok := s.snap.Jobs[r.PathValue("id")]
	round := s.snap.Round
	s.mu.Unlock()
	if !ok {
		writeErr(w, http.StatusNotFound, "job %s has no allocation (round %d)", r.PathValue("id"), round)
		return
	}
	writeJSON(w, http.StatusOK, ja)
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	resp := map[string]any{
		"uptime_seconds": time.Since(s.started).Seconds(),
		"round":          s.snap.Round,
		"num_jobs":       s.snap.NumJobs,
		"stale_jobs":     s.snap.StaleJobs,
		"pending":        len(s.pending),
		"gpu_types":      s.c.TypeNames,
		"gpus":           s.c.NumGPUs,
		"engine_kind":    s.engineKind,
		// engine marshals through online.Stats' JSON tags, so a field added
		// there lands here without a matching edit.
		"engine": s.snap.engStats,
		// price mirrors the price engine's counters through price.Stats' JSON
		// tags; all-zero under the LP engines, included unconditionally so
		// clients see a stable schema.
		"price": s.snap.priceStats,
		// search mirrors milp.SearchStats from the registry's counters. The
		// bundled cluster policies are pure LPs, so these stay zero unless a
		// MILP-backed policy runs with the server's observer; they are
		// included unconditionally so clients see a stable schema.
		"search": map[string]any{
			"nodes":            s.reg.Counter("pop_milp_nodes_total", "").Value(),
			"warm_nodes":       s.reg.Counter("pop_milp_warm_nodes_total", "").Value(),
			"cold_fallbacks":   s.reg.Counter("pop_milp_cold_fallbacks_total", "").Value(),
			"heuristic_solves": s.reg.Counter("pop_milp_heuristic_solves_total", "").Value(),
			"lp_pivots":        s.reg.Counter("pop_milp_lp_pivots_total", "").Value(),
			"dual_pivots":      s.reg.Counter("pop_milp_dual_pivots_total", "").Value(),
		},
	}
	if s.snap.shardStats != nil {
		// workers is the coordinator's per-shard view: acked round, stale
		// flag, job count, and each worker's own engine counters.
		resp["workers"] = s.snap.shardStats
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}
