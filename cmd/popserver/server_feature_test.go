package main

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pop/internal/cluster"
	"pop/internal/online"
	"pop/internal/shard"
)

// doAuth is do with an optional bearer token and tenant header.
func doAuth(t *testing.T, method, url, token, tenant string, body any, wantCode int) map[string]any {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		shard.Token(token).Set(req)
	}
	if tenant != "" {
		req.Header.Set("X-Pop-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("%s %s: status %d, want %d (%s)", method, url, resp.StatusCode, wantCode, raw)
	}
	out := map[string]any{}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("%s %s: bad JSON: %v", method, url, err)
	}
	return out
}

// TestServerAuthToken: with -auth-token set, every mutating endpoint demands
// the bearer token while reads and probes stay open.
func TestServerAuthToken(t *testing.T) {
	const token = "popserver-secret"
	s, err := newServer(cluster.NewCluster(4, 4, 4),
		serverConfig{policy: "maxmin", opts: online.Options{K: 2}, authToken: token}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.handler())
	t.Cleanup(ts.Close)

	spec := jobSpec{ID: 1, Throughput: []float64{1, 2, 3}}
	doAuth(t, "POST", ts.URL+"/v1/jobs", "", "", spec, http.StatusUnauthorized)
	doAuth(t, "POST", ts.URL+"/v1/jobs", "wrong", "", spec, http.StatusUnauthorized)
	doAuth(t, "POST", ts.URL+"/v1/tick", "", "", nil, http.StatusUnauthorized)
	doAuth(t, "DELETE", ts.URL+"/v1/jobs/1", "", "", nil, http.StatusUnauthorized)
	doAuth(t, "PUT", ts.URL+"/v1/cluster", "", "", clusterSpec{GPUs: []float64{4, 4, 4}}, http.StatusUnauthorized)

	doAuth(t, "POST", ts.URL+"/v1/jobs", token, "", spec, http.StatusAccepted)
	doAuth(t, "POST", ts.URL+"/v1/tick", token, "", nil, http.StatusOK)

	// Reads never need the token.
	doAuth(t, "GET", ts.URL+"/v1/allocation", "", "", nil, http.StatusOK)
	doAuth(t, "GET", ts.URL+"/v1/stats", "", "", nil, http.StatusOK)
	doAuth(t, "GET", ts.URL+"/healthz", "", "", nil, http.StatusOK)
}

// TestServerTenantQuota: per-tenant submissions are capped per round; the
// window resets at the tick and tenants are isolated from each other.
func TestServerTenantQuota(t *testing.T) {
	s, err := newServer(cluster.NewCluster(4, 4, 4),
		serverConfig{policy: "maxmin", opts: online.Options{K: 1}, quota: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.handler())
	t.Cleanup(ts.Close)

	for id := 0; id < 3; id++ {
		doAuth(t, "POST", ts.URL+"/v1/jobs", "", "", jobSpec{ID: id, Throughput: []float64{1, 2, 3}}, http.StatusAccepted)
	}
	out := doAuth(t, "POST", ts.URL+"/v1/jobs", "", "", jobSpec{ID: 3, Throughput: []float64{1, 2, 3}}, http.StatusTooManyRequests)
	if msg, _ := out["error"].(string); !strings.Contains(msg, "over quota") {
		t.Fatalf("429 body %v does not explain the quota", out)
	}

	// A different tenant has its own window.
	doAuth(t, "POST", ts.URL+"/v1/jobs", "", "team-b", jobSpec{ID: 10, Throughput: []float64{1, 2, 3}}, http.StatusAccepted)

	// A batch that would cross the line is rejected whole.
	batch := []jobSpec{
		{ID: 11, Throughput: []float64{1, 2, 3}},
		{ID: 12, Throughput: []float64{1, 2, 3}},
		{ID: 13, Throughput: []float64{1, 2, 3}},
	}
	doAuth(t, "POST", ts.URL+"/v1/jobs", "", "team-b", batch, http.StatusTooManyRequests)

	// The tick opens a fresh quota window.
	doAuth(t, "POST", ts.URL+"/v1/tick", "", "", nil, http.StatusOK)
	doAuth(t, "POST", ts.URL+"/v1/jobs", "", "", jobSpec{ID: 3, Throughput: []float64{1, 2, 3}}, http.StatusAccepted)

	// The rejections are visible in /metrics.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(raw), "pop_quota_rejections_total 2") {
		t.Fatal("metrics missing pop_quota_rejections_total 2")
	}
}

// TestServerBatchSubmit: one POST with a JSON array queues every spec, and a
// batch with one bad spec is rejected atomically.
func TestServerBatchSubmit(t *testing.T) {
	_, ts := newTestServer(t)
	batch := make([]jobSpec, 20)
	for i := range batch {
		batch[i] = jobSpec{ID: i, Throughput: []float64{1, 2, 3 + float64(i%3)}}
	}
	out := do(t, "POST", ts.URL+"/v1/jobs", batch, http.StatusAccepted)
	if got := out["accepted"].(float64); got != 20 {
		t.Fatalf("batch accepted %g specs, want 20", got)
	}
	tick := do(t, "POST", ts.URL+"/v1/tick", nil, http.StatusOK)
	if got := tick["num_jobs"].(float64); got != 20 {
		t.Fatalf("round saw %g jobs, want 20", got)
	}

	bad := []jobSpec{
		{ID: 100, Throughput: []float64{1, 2, 3}},
		{ID: 101, Throughput: []float64{1, 2}}, // wrong arity
	}
	do(t, "POST", ts.URL+"/v1/jobs", bad, http.StatusBadRequest)
	tick = do(t, "POST", ts.URL+"/v1/tick", nil, http.StatusOK)
	if got := tick["num_jobs"].(float64); got != 20 {
		t.Fatalf("rejected batch leaked jobs into the round: %g, want 20", got)
	}
}

// TestServerStateFileRestart: a server restarted with its -state-file picks
// up at the saved round with the engine's warm state intact — the
// single-process face of the worker snapshot machinery.
func TestServerStateFileRestart(t *testing.T) {
	stateFile := filepath.Join(t.TempDir(), "popserver.state")
	cfg := serverConfig{policy: "maxmin", opts: online.Options{K: 2}, stateFile: stateFile}
	c := cluster.NewCluster(4, 4, 4)

	s1, err := newServer(c, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.handler())
	for id := 0; id < 8; id++ {
		do(t, "POST", ts1.URL+"/v1/jobs", jobSpec{ID: id, Throughput: []float64{1, 2, 3 + float64(id%3)}}, http.StatusAccepted)
	}
	do(t, "POST", ts1.URL+"/v1/tick", nil, http.StatusOK)
	do(t, "POST", ts1.URL+"/v1/tick", nil, http.StatusOK)
	before := do(t, "GET", ts1.URL+"/v1/allocation", nil, http.StatusOK)
	if err := s1.saveState(); err != nil {
		t.Fatal(err)
	}
	ts1.Close()

	s2, err := newServer(c, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.handler())
	t.Cleanup(ts2.Close)

	// The restored server resumes at the saved round stamp...
	resp, err := http.Get(ts2.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Pop-Round"); got != "2" {
		t.Fatalf("restored server at round %q, want 2", got)
	}
	// ...with the engine's jobs and counters, so the first tick needs no
	// resubmission and continues the round sequence.
	donorStats := s1.bundle.Stats().(online.Stats)
	if got := s2.bundle.Stats().(online.Stats); got != donorStats {
		t.Fatalf("restored engine stats %+v, want %+v", got, donorStats)
	}
	tick := do(t, "POST", ts2.URL+"/v1/tick", nil, http.StatusOK)
	if got := tick["round"].(float64); got != 3 {
		t.Fatalf("first tick after restore is round %g, want 3", got)
	}
	if got := tick["num_jobs"].(float64); got != 8 {
		t.Fatalf("restored round has %g jobs, want 8", got)
	}
	after := do(t, "GET", ts2.URL+"/v1/allocation", nil, http.StatusOK)
	beforeJobs := before["jobs"].(map[string]any)
	afterJobs := after["jobs"].(map[string]any)
	for id, raw := range beforeJobs {
		wantThr := raw.(map[string]any)["effective_throughput"].(float64)
		gotJA, ok := afterJobs[id].(map[string]any)
		if !ok {
			t.Fatalf("job %s lost across restart", id)
		}
		if gotThr := gotJA["effective_throughput"].(float64); math.Abs(gotThr-wantThr) > 1e-6 {
			t.Fatalf("job %s reallocated after restart: %g -> %g", id, wantThr, gotThr)
		}
	}
}

// TestServerShardedEndToEnd: popserver in coordinator mode over two live
// shard workers — the full client-facing surface (submit, tick, allocation,
// stats, metrics) backed by scatter/gather rounds.
func TestServerShardedEndToEnd(t *testing.T) {
	const token = "fleet-secret"
	var workerURLs []string
	for i := 0; i < 2; i++ {
		b, err := shard.NewEngine(cluster.NewCluster(4, 4, 4), shard.EngineConfig{Policy: "maxmin", K: 1})
		if err != nil {
			t.Fatal(err)
		}
		w := shard.NewWorker(b, shard.WorkerOptions{Token: token})
		ws := httptest.NewServer(w.Handler())
		t.Cleanup(ws.Close)
		workerURLs = append(workerURLs, ws.URL)
	}

	s, err := newServer(cluster.NewCluster(4, 4, 4), serverConfig{
		workers:   workerURLs,
		deadline:  5 * time.Second,
		authToken: token,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.handler())
	t.Cleanup(ts.Close)

	for id := 0; id < 10; id++ {
		doAuth(t, "POST", ts.URL+"/v1/jobs", token, "",
			jobSpec{ID: id, Throughput: []float64{1, 2, 3 + float64(id%4)}}, http.StatusAccepted)
	}
	tick := doAuth(t, "POST", ts.URL+"/v1/tick", token, "", nil, http.StatusOK)
	if got := tick["num_jobs"].(float64); got != 10 {
		t.Fatalf("sharded round saw %g jobs, want 10", got)
	}
	if got := tick["stale_jobs"].(float64); got != 0 {
		t.Fatalf("healthy fleet produced %g stale jobs", got)
	}

	alloc := do(t, "GET", ts.URL+"/v1/allocation", nil, http.StatusOK)
	served := alloc["jobs"].(map[string]any)
	if len(served) != 10 {
		t.Fatalf("allocation has %d jobs, want 10", len(served))
	}
	for id, v := range served {
		ja := v.(map[string]any)
		if thr := ja["effective_throughput"].(float64); thr <= 0 {
			t.Fatalf("job %s starved under sharding: %g", id, thr)
		}
		if stale, _ := ja["stale"].(bool); stale {
			t.Fatalf("job %s flagged stale on a healthy fleet", id)
		}
	}

	// Churn a round: remove two, add one; the diff lands on the owners.
	doAuth(t, "DELETE", ts.URL+"/v1/jobs/0", token, "", nil, http.StatusAccepted)
	doAuth(t, "DELETE", ts.URL+"/v1/jobs/5", token, "", nil, http.StatusAccepted)
	doAuth(t, "POST", ts.URL+"/v1/jobs", token, "", jobSpec{ID: 50, Throughput: []float64{2, 2, 2}}, http.StatusAccepted)
	tick = doAuth(t, "POST", ts.URL+"/v1/tick", token, "", nil, http.StatusOK)
	if got := tick["num_jobs"].(float64); got != 9 {
		t.Fatalf("round after churn has %g jobs, want 9", got)
	}

	stats := do(t, "GET", ts.URL+"/v1/stats", nil, http.StatusOK)
	if kind := stats["engine_kind"].(string); kind != "sharded" {
		t.Fatalf("engine_kind = %q, want sharded", kind)
	}
	workers, ok := stats["workers"].([]any)
	if !ok || len(workers) != 2 {
		t.Fatalf("stats workers section %v, want 2 entries", stats["workers"])
	}
	totalJobs := 0.0
	for _, w := range workers {
		ws := w.(map[string]any)
		if ws["round"].(float64) != 2 {
			t.Fatalf("worker not at round 2: %v", ws)
		}
		if ws["stale"].(bool) {
			t.Fatalf("worker stale on a healthy fleet: %v", ws)
		}
		totalJobs += ws["jobs"].(float64)
	}
	if totalJobs != 9 {
		t.Fatalf("workers own %g jobs between them, want 9", totalJobs)
	}

	// The coordinator's shard counters reach /metrics.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	body := string(raw)
	for _, want := range []string{
		"pop_shard_rounds_total 2",
		"pop_shard_gather_seconds",
		"pop_shard_stale_jobs 0",
		`pop_shard_worker_seconds_bucket{worker="0"`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("coordinator /metrics missing %q", want)
		}
	}
}
