// Command popserver is a long-running allocation daemon on top of the
// online incremental engine (internal/online): clients submit and remove
// jobs over HTTP, mutations are batched per scheduling round, and each
// round re-solves only the dirtied POP sub-problems from their live LP
// models — capacity changes ride the dual simplex, data changes the primal
// warm path.
//
// Endpoints:
//
//	POST   /v1/jobs            submit or update a job (batched until the next round)
//	DELETE /v1/jobs/{id}       remove a job (batched)
//	PUT    /v1/cluster         install new per-type GPU capacities (next round)
//	POST   /v1/tick            force a scheduling round now
//	GET    /v1/allocation      full allocation snapshot of the last round
//	GET    /v1/allocation/{id} one job's allocation
//	GET    /v1/stats           engine and server counters
//	GET    /healthz            liveness
//
// Usage:
//
//	popserver [-addr :8080] [-gpus 32,32,32] [-k 8] [-round 2s] [-policy maxmin] [-rebalance]
//
// -policy selects maxmin, makespan, or spacesharing (pair slots for
// single-GPU jobs, solved online from the pair-block layout).
//
// With -round 0 no ticker runs and rounds happen only via POST /v1/tick.
//
// On SIGINT/SIGTERM the server stops accepting requests, drains in-flight
// handlers and the round in progress, and exits cleanly.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"pop/internal/cluster"
	"pop/internal/online"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		gpus      = flag.String("gpus", "32,32,32", "comma-separated GPU counts for K80,P100,V100")
		k         = flag.Int("k", 8, "number of POP sub-problems")
		round     = flag.Duration("round", 2*time.Second, "scheduling round length (0 = manual ticks only)")
		policyFl  = flag.String("policy", "maxmin", "scheduling policy: maxmin | makespan | spacesharing")
		parallel  = flag.Bool("parallel", true, "solve dirty sub-problems concurrently")
		rebalance = flag.Bool("rebalance", false, "move ≤1 job per round toward the least-loaded sub-problem")
	)
	flag.Parse()

	c, err := parseCluster(*gpus)
	if err != nil {
		fmt.Fprintln(os.Stderr, "popserver:", err)
		os.Exit(2)
	}
	var policy online.ClusterPolicy
	switch strings.ToLower(*policyFl) {
	case "maxmin", "max-min":
		policy = online.MaxMinFairness
	case "makespan", "min-makespan":
		policy = online.MinMakespan
	case "spacesharing", "space-sharing":
		policy = online.SpaceSharing
	default:
		fmt.Fprintf(os.Stderr, "popserver: unknown policy %q (want maxmin|makespan|spacesharing)\n", *policyFl)
		os.Exit(2)
	}

	srv, err := newServer(c, policy, online.Options{K: *k, Parallel: *parallel, Rebalance: *rebalance})
	if err != nil {
		fmt.Fprintln(os.Stderr, "popserver:", err)
		os.Exit(2)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "popserver:", err)
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	log.Printf("popserver: %s policy, %d sub-problems, cluster %v×%v, round %v, listening on %s",
		policy, *k, c.TypeNames, c.NumGPUs, *round, ln.Addr())
	if err := run(ctx, ln, srv, *round); err != nil {
		log.Fatal("popserver: ", err)
	}
	log.Print("popserver: drained and stopped")
}

// run serves HTTP on ln until ctx is cancelled, then shuts down gracefully:
// the listener closes, in-flight handlers get shutdownGrace to finish, the
// round ticker stops, and the round in progress (if any) is drained before
// run returns. With round > 0 a ticker drives scheduling rounds; otherwise
// rounds happen only via POST /v1/tick.
func run(ctx context.Context, ln net.Listener, s *server, round time.Duration) error {
	const shutdownGrace = 10 * time.Second

	hs := &http.Server{Handler: s.handler()}
	tickerDone := make(chan struct{})
	tickerCtx, stopTicker := context.WithCancel(ctx)
	defer stopTicker()
	go func() {
		defer close(tickerDone)
		if round <= 0 {
			return
		}
		tick := time.NewTicker(round)
		defer tick.Stop()
		for {
			select {
			case <-tickerCtx.Done():
				return
			case <-tick.C:
				if _, err := s.tick(); err != nil {
					log.Printf("popserver: round failed: %v", err)
				}
			}
		}
	}()

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		stopTicker()
		<-tickerDone
		return err
	case <-ctx.Done():
	}

	shutdownCtx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	err := hs.Shutdown(shutdownCtx) // stop accepting; drain in-flight handlers
	stopTicker()
	<-tickerDone // the ticker goroutine finishes its round before exiting
	s.drain()    // and any round still holding the engine completes
	if serr := <-serveErr; serr != nil && serr != http.ErrServerClosed {
		return serr
	}
	return err
}

func parseCluster(spec string) (cluster.Cluster, error) {
	parts := strings.Split(spec, ",")
	if len(parts) != 3 {
		return cluster.Cluster{}, fmt.Errorf("-gpus wants three comma-separated counts, got %q", spec)
	}
	counts := make([]float64, 3)
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || v < 0 {
			return cluster.Cluster{}, fmt.Errorf("bad GPU count %q", p)
		}
		counts[i] = v
	}
	return cluster.NewCluster(counts[0], counts[1], counts[2]), nil
}
