// Command popserver is a long-running allocation daemon on top of the
// online incremental engine (internal/online): clients submit and remove
// jobs over HTTP, mutations are batched per scheduling round, and each
// round re-solves only the dirtied POP sub-problems from their live LP
// models — capacity changes ride the dual simplex, data changes the primal
// warm path.
//
// Endpoints:
//
//	POST   /v1/jobs            submit or update a job, or a JSON array of jobs (batched until the next round)
//	DELETE /v1/jobs/{id}       remove a job (batched)
//	PUT    /v1/cluster         install new per-type GPU capacities (next round)
//	POST   /v1/tick            force a scheduling round now
//	GET    /v1/allocation      full allocation snapshot of the last round
//	GET    /v1/allocation/{id} one job's allocation
//	GET    /v1/stats           engine and server counters
//	GET    /healthz            liveness
//
// Deployment shapes. By default the daemon runs one in-process engine.
// With -workers it becomes a shard coordinator instead: clients are
// consistent-hashed onto shard-worker processes (started with the `worker`
// subcommand), each round is a deadline-bounded scatter/gather across them,
// and a worker that misses the deadline has its clients served last round's
// allocation, flagged "stale" in /v1/allocation. Crashed workers are
// rebuilt from the coordinator's client registry. See internal/shard.
//
//	popserver worker -shard-addr :9001 [-policy ... -k ... -auth-token ... -state-file ...]
//	popserver -workers http://host:9001,http://host:9002 [-shard-deadline 10s] [-auth-token ...]
//
// Hardening: -auth-token requires a shared bearer token on every mutating
// endpoint (and stamps coordinator→worker calls); -quota caps per-tenant
// (X-Pop-Tenant header) submissions per round, answering 429 beyond it;
// -state-file persists the engine's warm state (partitions, simplex bases,
// prices) across restarts, in both single-process and worker modes.
//
// Observability: GET /metrics serves the server's counters, gauges, and
// latency histograms (round latency, warm/cold sub-solve counters, LP pivot
// totals, shard straggler/rebuild counters, per-endpoint request latency)
// in Prometheus text format. An opt-in -debug-addr starts a second listener
// exposing net/http/pprof under /debug/pprof/ plus the same /metrics.
// Logging is structured (log/slog, text to stderr); -log-level picks
// debug|info|warn|error, with per-request lines at debug and per-round
// lines at info.
//
// Usage:
//
//	popserver [-addr :8080] [-gpus 32,32,32] [-k 8] [-round 2s] [-policy maxmin|price] [-rebalance]
//	          [-workers url,url] [-shard-deadline 10s] [-auth-token t] [-quota n] [-state-file f]
//	          [-log-level info] [-debug-addr :6060]
//
// -policy selects maxmin, makespan, spacesharing (pair slots for single-GPU
// jobs, solved online from the pair-block layout), or price — the solver-free
// price-discovery engine (internal/price): per-round parallel best responses
// with warm-started prices, no LP.
//
// With -round 0 no ticker runs and rounds happen only via POST /v1/tick.
//
// On SIGINT/SIGTERM the server stops accepting requests, drains in-flight
// handlers and the round in progress, saves -state-file, and exits cleanly.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"pop/internal/cluster"
	"pop/internal/obs"
	"pop/internal/online"
	"pop/internal/shard"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "worker" {
		if err := workerMain(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "popserver worker:", err)
			os.Exit(1)
		}
		return
	}
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		gpus      = flag.String("gpus", "32,32,32", "comma-separated GPU counts for K80,P100,V100")
		k         = flag.Int("k", 8, "number of POP sub-problems")
		round     = flag.Duration("round", 2*time.Second, "scheduling round length (0 = manual ticks only)")
		policyFl  = flag.String("policy", "maxmin", "scheduling policy: maxmin | makespan | spacesharing | price")
		parallel  = flag.Bool("parallel", true, "solve dirty sub-problems concurrently")
		rebalance = flag.Bool("rebalance", false, "move ≤1 job per round toward the least-loaded sub-problem")
		workers   = flag.String("workers", "", "comma-separated shard-worker base URLs (coordinator mode)")
		deadline  = flag.Duration("shard-deadline", 10*time.Second, "per-round scatter/gather deadline (coordinator mode)")
		authTok   = flag.String("auth-token", "", "bearer token required on mutating endpoints and used for worker calls")
		quota     = flag.Int("quota", 0, "max job submissions per tenant per round (0 = unlimited)")
		stateFile = flag.String("state-file", "", "persist engine warm state here across restarts (single-process mode)")
		logLevel  = flag.String("log-level", "info", "log level: debug | info | warn | error")
		debugAddr = flag.String("debug-addr", "", "optional second listener serving /debug/pprof/ and /metrics")
	)
	flag.Parse()

	logger, err := newLogger(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "popserver:", err)
		os.Exit(2)
	}

	c, err := parseCluster(*gpus)
	if err != nil {
		fmt.Fprintln(os.Stderr, "popserver:", err)
		os.Exit(2)
	}
	cfg := serverConfig{
		policy:    *policyFl,
		opts:      online.Options{K: *k, Parallel: *parallel, Rebalance: *rebalance},
		deadline:  *deadline,
		authToken: shard.Token(*authTok),
		quota:     *quota,
		stateFile: *stateFile,
	}
	if *workers != "" {
		for _, u := range strings.Split(*workers, ",") {
			if u = strings.TrimSpace(u); u != "" {
				cfg.workers = append(cfg.workers, strings.TrimSuffix(u, "/"))
			}
		}
	}
	srv, err := newServer(c, cfg, logger)
	if err != nil {
		fmt.Fprintln(os.Stderr, "popserver:", err)
		os.Exit(2)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "popserver:", err)
		os.Exit(2)
	}
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "popserver:", err)
			os.Exit(2)
		}
		defer dln.Close()
		go func() { _ = http.Serve(dln, debugHandler(srv)) }()
		logger.Info("debug listener up", "addr", dln.Addr().String())
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	logger.Info("popserver listening",
		"addr", ln.Addr().String(), "policy", strings.ToLower(*policyFl), "k", *k,
		"mode", srv.engineKind, "workers", len(cfg.workers),
		"gpu_types", c.TypeNames, "gpus", c.NumGPUs, "round", *round)
	if err := run(ctx, ln, srv, *round); err != nil {
		logger.Error("popserver failed", "err", err)
		os.Exit(1)
	}
	if err := srv.saveState(); err != nil {
		logger.Warn("final state save failed", "err", err)
	}
	logger.Info("drained and stopped")
}

func newLogger(level string) (*slog.Logger, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q (want debug|info|warn|error)", level)
	}
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lv})), nil
}

// workerMain runs the shard-worker subcommand: one policy engine owned by
// this process, serving the coordinator protocol (internal/shard) until
// SIGINT/SIGTERM, with its warm state checkpointed to -state-file.
func workerMain(args []string) error {
	fs := flag.NewFlagSet("popserver worker", flag.ExitOnError)
	var (
		addr      = fs.String("shard-addr", ":9001", "listen address for the coordinator protocol")
		gpus      = fs.String("gpus", "32,32,32", "initial GPU counts (each round carries its own capacities)")
		k         = fs.Int("k", 1, "POP sub-problems inside this worker's engine")
		policyFl  = fs.String("policy", "maxmin", "scheduling policy: maxmin | makespan | spacesharing | price")
		parallel  = fs.Bool("parallel", true, "solve dirty sub-problems concurrently")
		rebalance = fs.Bool("rebalance", false, "enable the engine's drift-bounded rebalancer")
		authTok   = fs.String("auth-token", "", "bearer token required on round and sync requests")
		stateFile = fs.String("state-file", "", "persist engine warm state here across restarts")
		logLevel  = fs.String("log-level", "info", "log level: debug | info | warn | error")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger, err := newLogger(*logLevel)
	if err != nil {
		return err
	}
	c, err := parseCluster(*gpus)
	if err != nil {
		return err
	}
	reg := obs.NewRegistry()
	o := &obs.Observer{Metrics: reg}
	b, err := shard.NewEngine(c, shard.EngineConfig{
		Policy: *policyFl, K: *k, Parallel: *parallel, Rebalance: *rebalance, Obs: o,
	})
	if err != nil {
		return err
	}
	w := shard.NewWorker(b, shard.WorkerOptions{
		Token:     shard.Token(*authTok),
		StateFile: *stateFile,
		Obs:       o,
		Log:       logger,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	logger.Info("shard worker listening",
		"addr", ln.Addr().String(), "policy", strings.ToLower(*policyFl), "k", *k,
		"kind", b.Kind, "round", w.LastRound())

	hs := &http.Server{Handler: w.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err = hs.Shutdown(shutdownCtx)
	if saveErr := w.SaveState(); saveErr != nil {
		logger.Warn("final state save failed", "err", saveErr)
	}
	if serr := <-serveErr; serr != nil && serr != http.ErrServerClosed {
		return serr
	}
	logger.Info("worker drained and stopped")
	return err
}

// debugHandler is the opt-in -debug-addr surface: the pprof index and
// profile endpoints (registered explicitly — the servers use private muxes,
// so the net/http/pprof DefaultServeMux side effects never leak into the
// API listener) plus the metrics exposition for scrapes that should not
// touch the serving port.
func debugHandler(s *server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// run serves HTTP on ln until ctx is cancelled, then shuts down gracefully:
// the listener closes, in-flight handlers get shutdownGrace to finish, the
// round ticker stops, and the round in progress (if any) is drained before
// run returns. With round > 0 a ticker drives scheduling rounds; otherwise
// rounds happen only via POST /v1/tick.
func run(ctx context.Context, ln net.Listener, s *server, round time.Duration) error {
	const shutdownGrace = 10 * time.Second

	hs := &http.Server{Handler: s.handler()}
	tickerDone := make(chan struct{})
	tickerCtx, stopTicker := context.WithCancel(ctx)
	defer stopTicker()
	go func() {
		defer close(tickerDone)
		if round <= 0 {
			return
		}
		tick := time.NewTicker(round)
		defer tick.Stop()
		for {
			select {
			case <-tickerCtx.Done():
				return
			case <-tick.C:
				if _, err := s.tick(); err != nil {
					s.log.Error("round failed", "err", err)
				}
			}
		}
	}()

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		stopTicker()
		<-tickerDone
		return err
	case <-ctx.Done():
	}

	shutdownCtx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	err := hs.Shutdown(shutdownCtx) // stop accepting; drain in-flight handlers
	stopTicker()
	<-tickerDone // the ticker goroutine finishes its round before exiting
	s.drain()    // and any round still holding the engine completes
	if serr := <-serveErr; serr != nil && serr != http.ErrServerClosed {
		return serr
	}
	return err
}

func parseCluster(spec string) (cluster.Cluster, error) {
	parts := strings.Split(spec, ",")
	if len(parts) != 3 {
		return cluster.Cluster{}, fmt.Errorf("-gpus wants three comma-separated counts, got %q", spec)
	}
	counts := make([]float64, 3)
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || v < 0 {
			return cluster.Cluster{}, fmt.Errorf("bad GPU count %q", p)
		}
		counts[i] = v
	}
	return cluster.NewCluster(counts[0], counts[1], counts[2]), nil
}
