// Command popserver is a long-running allocation daemon on top of the
// online incremental engine (internal/online): clients submit and remove
// jobs over HTTP, mutations are batched per scheduling round, and each
// round re-solves only the dirtied POP sub-problems from their live LP
// models — capacity changes ride the dual simplex, data changes the primal
// warm path.
//
// Endpoints:
//
//	POST   /v1/jobs            submit or update a job (batched until the next round)
//	DELETE /v1/jobs/{id}       remove a job (batched)
//	PUT    /v1/cluster         install new per-type GPU capacities (next round)
//	POST   /v1/tick            force a scheduling round now
//	GET    /v1/allocation      full allocation snapshot of the last round
//	GET    /v1/allocation/{id} one job's allocation
//	GET    /v1/stats           engine and server counters
//	GET    /healthz            liveness
//
// Observability: GET /metrics serves the server's counters, gauges, and
// latency histograms (round latency, warm/cold sub-solve counters, LP pivot
// totals, per-endpoint request latency) in Prometheus text format. An
// opt-in -debug-addr starts a second listener exposing net/http/pprof under
// /debug/pprof/ plus the same /metrics. Logging is structured (log/slog,
// text to stderr); -log-level picks debug|info|warn|error, with per-request
// lines at debug and per-round lines at info.
//
// Usage:
//
//	popserver [-addr :8080] [-gpus 32,32,32] [-k 8] [-round 2s] [-policy maxmin|price] [-rebalance]
//	          [-log-level info] [-debug-addr :6060]
//
// -policy selects maxmin, makespan, spacesharing (pair slots for single-GPU
// jobs, solved online from the pair-block layout), or price — the solver-free
// price-discovery engine (internal/price): per-round parallel best responses
// with warm-started prices, no LP.
//
// With -round 0 no ticker runs and rounds happen only via POST /v1/tick.
//
// On SIGINT/SIGTERM the server stops accepting requests, drains in-flight
// handlers and the round in progress, and exits cleanly.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"pop/internal/cluster"
	"pop/internal/online"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		gpus      = flag.String("gpus", "32,32,32", "comma-separated GPU counts for K80,P100,V100")
		k         = flag.Int("k", 8, "number of POP sub-problems")
		round     = flag.Duration("round", 2*time.Second, "scheduling round length (0 = manual ticks only)")
		policyFl  = flag.String("policy", "maxmin", "scheduling policy: maxmin | makespan | spacesharing | price")
		parallel  = flag.Bool("parallel", true, "solve dirty sub-problems concurrently")
		rebalance = flag.Bool("rebalance", false, "move ≤1 job per round toward the least-loaded sub-problem")
		logLevel  = flag.String("log-level", "info", "log level: debug | info | warn | error")
		debugAddr = flag.String("debug-addr", "", "optional second listener serving /debug/pprof/ and /metrics")
	)
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "popserver: bad -log-level %q (want debug|info|warn|error)\n", *logLevel)
		os.Exit(2)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	c, err := parseCluster(*gpus)
	if err != nil {
		fmt.Fprintln(os.Stderr, "popserver:", err)
		os.Exit(2)
	}
	srv, err := newServer(c, *policyFl, online.Options{K: *k, Parallel: *parallel, Rebalance: *rebalance}, logger)
	if err != nil {
		fmt.Fprintln(os.Stderr, "popserver:", err)
		os.Exit(2)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "popserver:", err)
		os.Exit(2)
	}
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "popserver:", err)
			os.Exit(2)
		}
		defer dln.Close()
		go func() { _ = http.Serve(dln, debugHandler(srv)) }()
		logger.Info("debug listener up", "addr", dln.Addr().String())
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	logger.Info("popserver listening",
		"addr", ln.Addr().String(), "policy", strings.ToLower(*policyFl), "k", *k,
		"gpu_types", c.TypeNames, "gpus", c.NumGPUs, "round", *round)
	if err := run(ctx, ln, srv, *round); err != nil {
		logger.Error("popserver failed", "err", err)
		os.Exit(1)
	}
	logger.Info("drained and stopped")
}

// debugHandler is the opt-in -debug-addr surface: the pprof index and
// profile endpoints (registered explicitly — the servers use private muxes,
// so the net/http/pprof DefaultServeMux side effects never leak into the
// API listener) plus the metrics exposition for scrapes that should not
// touch the serving port.
func debugHandler(s *server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// run serves HTTP on ln until ctx is cancelled, then shuts down gracefully:
// the listener closes, in-flight handlers get shutdownGrace to finish, the
// round ticker stops, and the round in progress (if any) is drained before
// run returns. With round > 0 a ticker drives scheduling rounds; otherwise
// rounds happen only via POST /v1/tick.
func run(ctx context.Context, ln net.Listener, s *server, round time.Duration) error {
	const shutdownGrace = 10 * time.Second

	hs := &http.Server{Handler: s.handler()}
	tickerDone := make(chan struct{})
	tickerCtx, stopTicker := context.WithCancel(ctx)
	defer stopTicker()
	go func() {
		defer close(tickerDone)
		if round <= 0 {
			return
		}
		tick := time.NewTicker(round)
		defer tick.Stop()
		for {
			select {
			case <-tickerCtx.Done():
				return
			case <-tick.C:
				if _, err := s.tick(); err != nil {
					s.log.Error("round failed", "err", err)
				}
			}
		}
	}()

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		stopTicker()
		<-tickerDone
		return err
	case <-ctx.Done():
	}

	shutdownCtx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	err := hs.Shutdown(shutdownCtx) // stop accepting; drain in-flight handlers
	stopTicker()
	<-tickerDone // the ticker goroutine finishes its round before exiting
	s.drain()    // and any round still holding the engine completes
	if serr := <-serveErr; serr != nil && serr != http.ErrServerClosed {
		return serr
	}
	return err
}

func parseCluster(spec string) (cluster.Cluster, error) {
	parts := strings.Split(spec, ",")
	if len(parts) != 3 {
		return cluster.Cluster{}, fmt.Errorf("-gpus wants three comma-separated counts, got %q", spec)
	}
	counts := make([]float64, 3)
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || v < 0 {
			return cluster.Cluster{}, fmt.Errorf("bad GPU count %q", p)
		}
		counts[i] = v
	}
	return cluster.NewCluster(counts[0], counts[1], counts[2]), nil
}
