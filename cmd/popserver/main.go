// Command popserver is a long-running allocation daemon on top of the
// online incremental engine (internal/online): clients submit and remove
// jobs over HTTP, mutations are batched per scheduling round, and each
// round re-solves only the dirtied POP sub-problems, warm-started from
// their previous simplex bases.
//
// Endpoints:
//
//	POST   /v1/jobs            submit or update a job (batched until the next round)
//	DELETE /v1/jobs/{id}       remove a job (batched)
//	POST   /v1/tick            force a scheduling round now
//	GET    /v1/allocation      full allocation snapshot of the last round
//	GET    /v1/allocation/{id} one job's allocation
//	GET    /v1/stats           engine and server counters
//	GET    /healthz            liveness
//
// Usage:
//
//	popserver [-addr :8080] [-gpus 32,32,32] [-k 8] [-round 2s] [-policy maxmin]
//
// With -round 0 no ticker runs and rounds happen only via POST /v1/tick.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"pop/internal/cluster"
	"pop/internal/online"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		gpus     = flag.String("gpus", "32,32,32", "comma-separated GPU counts for K80,P100,V100")
		k        = flag.Int("k", 8, "number of POP sub-problems")
		round    = flag.Duration("round", 2*time.Second, "scheduling round length (0 = manual ticks only)")
		policyFl = flag.String("policy", "maxmin", "scheduling policy: maxmin | makespan")
		parallel = flag.Bool("parallel", true, "solve dirty sub-problems concurrently")
	)
	flag.Parse()

	c, err := parseCluster(*gpus)
	if err != nil {
		fmt.Fprintln(os.Stderr, "popserver:", err)
		os.Exit(2)
	}
	var policy online.ClusterPolicy
	switch strings.ToLower(*policyFl) {
	case "maxmin", "max-min":
		policy = online.MaxMinFairness
	case "makespan", "min-makespan":
		policy = online.MinMakespan
	default:
		fmt.Fprintf(os.Stderr, "popserver: unknown policy %q (want maxmin|makespan)\n", *policyFl)
		os.Exit(2)
	}

	srv, err := newServer(c, policy, online.Options{K: *k, Parallel: *parallel})
	if err != nil {
		fmt.Fprintln(os.Stderr, "popserver:", err)
		os.Exit(2)
	}

	if *round > 0 {
		go func() {
			tick := time.NewTicker(*round)
			defer tick.Stop()
			for range tick.C {
				if _, err := srv.tick(); err != nil {
					log.Printf("popserver: round failed: %v", err)
				}
			}
		}()
	}

	log.Printf("popserver: %s policy, %d sub-problems, cluster %v×%v, round %v, listening on %s",
		policy, *k, c.TypeNames, c.NumGPUs, *round, *addr)
	log.Fatal(http.ListenAndServe(*addr, srv.handler()))
}

func parseCluster(spec string) (cluster.Cluster, error) {
	parts := strings.Split(spec, ",")
	if len(parts) != 3 {
		return cluster.Cluster{}, fmt.Errorf("-gpus wants three comma-separated counts, got %q", spec)
	}
	counts := make([]float64, 3)
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || v < 0 {
			return cluster.Cluster{}, fmt.Errorf("bad GPU count %q", p)
		}
		counts[i] = v
	}
	return cluster.NewCluster(counts[0], counts[1], counts[2]), nil
}
