package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"pop/internal/cluster"
	"pop/internal/online"
)

func newTestServer(t *testing.T) (*server, *httptest.Server) {
	t.Helper()
	s, err := newServer(cluster.NewCluster(4, 4, 4), serverConfig{policy: "maxmin", opts: online.Options{K: 2}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func do(t *testing.T, method, url string, body any, wantCode int) map[string]any {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		t.Fatalf("%s %s: status %d, want %d", method, url, resp.StatusCode, wantCode)
	}
	out := map[string]any{}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("%s %s: bad JSON: %v", method, url, err)
	}
	return out
}

// TestServerRoundTrip drives the full submit → tick → allocation → remove
// life cycle through the HTTP surface.
func TestServerRoundTrip(t *testing.T) {
	_, ts := newTestServer(t)

	// Batch a handful of jobs; nothing is allocated before the round ticks.
	for id := 0; id < 6; id++ {
		do(t, "POST", ts.URL+"/v1/jobs", jobSpec{
			ID:         id,
			Throughput: []float64{1, 2, 4},
			Weight:     1,
			Scale:      1,
			NumSteps:   1000,
		}, http.StatusAccepted)
	}
	alloc := do(t, "GET", ts.URL+"/v1/allocation", nil, http.StatusOK)
	if got := alloc["num_jobs"].(float64); got != 0 {
		t.Fatalf("pre-tick allocation has %g jobs, want 0 (batching broke)", got)
	}

	// Tick: the batch lands in one round.
	tick := do(t, "POST", ts.URL+"/v1/tick", nil, http.StatusOK)
	if got := tick["num_jobs"].(float64); got != 6 {
		t.Fatalf("round saw %g jobs, want 6", got)
	}

	alloc = do(t, "GET", ts.URL+"/v1/allocation", nil, http.StatusOK)
	jobs := alloc["jobs"].(map[string]any)
	if len(jobs) != 6 {
		t.Fatalf("allocation has %d jobs, want 6", len(jobs))
	}
	// Every job must receive useful throughput on this uncontended cluster.
	for id, raw := range jobs {
		ja := raw.(map[string]any)
		if thr := ja["effective_throughput"].(float64); thr <= 0 {
			t.Fatalf("job %s starved: %g", id, thr)
		}
		x := ja["x"].([]any)
		sum := 0.0
		for _, v := range x {
			sum += v.(float64)
		}
		if sum > 1+1e-6 {
			t.Fatalf("job %s time budget %g > 1", id, sum)
		}
	}

	one := do(t, "GET", ts.URL+"/v1/allocation/3", nil, http.StatusOK)
	if got := one["id"].(float64); got != 3 {
		t.Fatalf("allocation/3 returned id %g", got)
	}
	do(t, "GET", ts.URL+"/v1/allocation/99", nil, http.StatusNotFound)

	// Remove two jobs; the next round shrinks.
	do(t, "DELETE", ts.URL+"/v1/jobs/0", nil, http.StatusAccepted)
	do(t, "DELETE", ts.URL+"/v1/jobs/1", nil, http.StatusAccepted)
	tick = do(t, "POST", ts.URL+"/v1/tick", nil, http.StatusOK)
	if got := tick["num_jobs"].(float64); got != 4 {
		t.Fatalf("round saw %g jobs after removals, want 4", got)
	}

	stats := do(t, "GET", ts.URL+"/v1/stats", nil, http.StatusOK)
	eng := stats["engine"].(map[string]any)
	if got := eng["departures"].(float64); got != 2 {
		t.Fatalf("engine departures %g, want 2", got)
	}
	if got := eng["rounds"].(float64); got < 2 {
		t.Fatalf("engine rounds %g, want ≥ 2", got)
	}
}

// TestServerBatchingSkipsCleanSubProblems: a second tick with no pending
// mutations must not re-solve anything.
func TestServerBatchingSkipsCleanSubProblems(t *testing.T) {
	s, ts := newTestServer(t)
	for id := 0; id < 4; id++ {
		do(t, "POST", ts.URL+"/v1/jobs", jobSpec{ID: id, Throughput: []float64{1, 1, 1}}, http.StatusAccepted)
	}
	do(t, "POST", ts.URL+"/v1/tick", nil, http.StatusOK)
	before := s.bundle.Stats().(online.Stats).SubSolves
	do(t, "POST", ts.URL+"/v1/tick", nil, http.StatusOK)
	if after := s.bundle.Stats().(online.Stats).SubSolves; after != before {
		t.Fatalf("idle tick re-solved %d sub-problems", after-before)
	}
}

// TestServerValidation rejects malformed submissions.
func TestServerValidation(t *testing.T) {
	_, ts := newTestServer(t)
	do(t, "POST", ts.URL+"/v1/jobs", jobSpec{ID: 1, Throughput: []float64{1, 2}}, http.StatusBadRequest)
	do(t, "POST", ts.URL+"/v1/jobs", jobSpec{ID: -1, Throughput: []float64{1, 2, 3}}, http.StatusBadRequest)
	do(t, "POST", ts.URL+"/v1/jobs", jobSpec{ID: 1, Throughput: []float64{1, -2, 3}}, http.StatusBadRequest)
	do(t, "GET", ts.URL+"/healthz", nil, http.StatusOK)
}

// TestServerSetCluster drives the resource-capacity endpoint: a PUT
// reshapes the pool for the next round, dirtying every sub-problem and
// never lowering the max-min fair floor when capacity only grows; malformed
// specs are rejected without touching the pool.
func TestServerSetCluster(t *testing.T) {
	s, ts := newTestServer(t)
	jobs := make([]cluster.Job, 6)
	for id := 0; id < 6; id++ {
		thr := []float64{1, 1.5 + float64(id)*0.2, 3}
		jobs[id] = cluster.Job{ID: id, Throughput: thr, Weight: 1, Scale: 1, NumSteps: 1, Priority: 1}
		do(t, "POST", ts.URL+"/v1/jobs", jobSpec{ID: id, Throughput: thr}, http.StatusAccepted)
	}
	do(t, "POST", ts.URL+"/v1/tick", nil, http.StatusOK)
	small := cluster.NewCluster(4, 4, 4)
	floorBefore := minRatio(t, ts, jobs, small)
	solvesBefore := int(engineStat(t, ts, "sub_solves"))

	resp := do(t, "PUT", ts.URL+"/v1/cluster", clusterSpec{GPUs: []float64{8, 8, 8}}, http.StatusOK)
	gpus, ok := resp["gpus"].([]any)
	if !ok || len(gpus) != 3 || gpus[0].(float64) != 8 {
		t.Fatalf("PUT /v1/cluster echoed %v", resp["gpus"])
	}
	do(t, "POST", ts.URL+"/v1/tick", nil, http.StatusOK)
	big := cluster.NewCluster(8, 8, 8)
	if got := s.bundle.Engine.(*online.ClusterEngine).Cluster().NumGPUs[0]; got != 8 {
		t.Fatalf("engine cluster not updated: %g GPUs of type 0, want 8", got)
	}
	// The capacity change dirties both sub-problems.
	if got := int(engineStat(t, ts, "sub_solves")) - solvesBefore; got != 2 {
		t.Fatalf("capacity change re-solved %d sub-problems, want 2", got)
	}
	// More GPUs with identical (clamped) equal shares: the fair floor —
	// min normalized ratio, the policy's objective — must not drop.
	if floorAfter := minRatio(t, ts, jobs, big); floorAfter < floorBefore-1e-9 {
		t.Fatalf("fair floor dropped after capacity doubled: %g -> %g", floorBefore, floorAfter)
	}

	// Malformed specs: wrong arity, negative counts, bad JSON.
	do(t, "PUT", ts.URL+"/v1/cluster", clusterSpec{GPUs: []float64{8, 8}}, http.StatusBadRequest)
	do(t, "PUT", ts.URL+"/v1/cluster", clusterSpec{GPUs: []float64{8, -1, 8}}, http.StatusBadRequest)
	do(t, "PUT", ts.URL+"/v1/cluster", "not a cluster", http.StatusBadRequest)
	if got := s.bundle.Engine.(*online.ClusterEngine).Cluster().NumGPUs[0]; got != 8 {
		t.Fatalf("rejected PUT changed the cluster: %g GPUs of type 0", got)
	}
}

// minRatio recomputes the max-min objective — the minimum normalized
// throughput ratio — from the served allocation snapshot.
func minRatio(t *testing.T, ts *httptest.Server, jobs []cluster.Job, c cluster.Cluster) float64 {
	t.Helper()
	snap := do(t, "GET", ts.URL+"/v1/allocation", nil, http.StatusOK)
	served, _ := snap["jobs"].(map[string]any)
	a := &cluster.Allocation{EffThr: make([]float64, len(jobs))}
	for i, j := range jobs {
		ja, ok := served[fmt.Sprint(j.ID)].(map[string]any)
		if !ok {
			t.Fatalf("job %d missing from allocation snapshot", j.ID)
		}
		a.EffThr[i] = ja["effective_throughput"].(float64)
	}
	min, _ := cluster.MinMean(cluster.NormalizedRatios(jobs, c, a))
	return min
}

func engineStat(t *testing.T, ts *httptest.Server, key string) float64 {
	t.Helper()
	stats := do(t, "GET", ts.URL+"/v1/stats", nil, http.StatusOK)
	eng, ok := stats["engine"].(map[string]any)
	if !ok {
		t.Fatal("stats missing engine section")
	}
	v, ok := eng[key].(float64)
	if !ok {
		t.Fatalf("stats engine section missing %q", key)
	}
	return v
}

// TestServerSpaceSharingPolicy runs a round under the space-sharing policy:
// jobs are allocated through shared slots, so the snapshot reports effective
// throughputs without solo X rows.
func TestServerSpaceSharingPolicy(t *testing.T) {
	s, err := newServer(cluster.NewCluster(3, 3, 3), serverConfig{policy: "spacesharing", opts: online.Options{K: 2}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.handler())
	t.Cleanup(ts.Close)
	for id := 0; id < 8; id++ {
		do(t, "POST", ts.URL+"/v1/jobs",
			jobSpec{ID: id, Throughput: []float64{1, 2, 3.5 + float64(id)*0.1}}, http.StatusAccepted)
	}
	do(t, "POST", ts.URL+"/v1/tick", nil, http.StatusOK)
	snap := do(t, "GET", ts.URL+"/v1/allocation", nil, http.StatusOK)
	served, _ := snap["jobs"].(map[string]any)
	if len(served) != 8 {
		t.Fatalf("snapshot has %d jobs, want 8", len(served))
	}
	for id, v := range served {
		ja := v.(map[string]any)
		if thr := ja["effective_throughput"].(float64); thr <= 0 {
			t.Fatalf("job %s starved under space sharing: %g", id, thr)
		}
		if _, has := ja["x"]; has {
			t.Fatalf("job %s snapshot carries solo X rows under space sharing", id)
		}
	}
}

// TestServerPricePolicy runs rounds under -policy price: allocations come
// from the solver-free price-discovery engine, and /v1/stats reports the
// engine kind plus the price-engine counters (iterations, clearing residual,
// warm-price rounds).
func TestServerPricePolicy(t *testing.T) {
	s, err := newServer(cluster.NewCluster(4, 4, 4), serverConfig{policy: "price"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.handler())
	t.Cleanup(ts.Close)
	for id := 0; id < 12; id++ {
		do(t, "POST", ts.URL+"/v1/jobs",
			jobSpec{ID: id, Throughput: []float64{1, 2, 3.5 + float64(id)*0.1}}, http.StatusAccepted)
	}
	do(t, "POST", ts.URL+"/v1/tick", nil, http.StatusOK)
	// Low-churn second round: the engine carries the prices forward.
	do(t, "DELETE", ts.URL+"/v1/jobs/3", nil, http.StatusAccepted)
	do(t, "POST", ts.URL+"/v1/jobs", jobSpec{ID: 99, Throughput: []float64{2, 2, 2}}, http.StatusAccepted)
	do(t, "POST", ts.URL+"/v1/tick", nil, http.StatusOK)

	snap := do(t, "GET", ts.URL+"/v1/allocation", nil, http.StatusOK)
	served, _ := snap["jobs"].(map[string]any)
	if len(served) != 12 {
		t.Fatalf("snapshot has %d jobs, want 12", len(served))
	}
	for id, v := range served {
		ja := v.(map[string]any)
		if thr := ja["effective_throughput"].(float64); thr <= 0 {
			t.Fatalf("job %s starved under the price engine: %g", id, thr)
		}
	}

	stats := do(t, "GET", ts.URL+"/v1/stats", nil, http.StatusOK)
	if kind := stats["engine_kind"].(string); kind != "price" {
		t.Fatalf("engine_kind = %q, want price", kind)
	}
	pr := stats["price"].(map[string]any)
	if got := pr["rounds"].(float64); got != 2 {
		t.Fatalf("price rounds %g, want 2", got)
	}
	if got := pr["iterations"].(float64); got <= 0 {
		t.Fatalf("price iterations %g, want > 0", got)
	}
	if got := pr["warm_price_rounds"].(float64); got != 1 {
		t.Fatalf("warm price rounds %g, want 1 (second round rides carried prices)", got)
	}
	if _, has := pr["last_residual"]; !has {
		t.Fatal("price stats missing last_residual")
	}

	// An LP-engine server reports its kind and an all-zero price block —
	// the schema is stable across engines.
	lpStats := func() map[string]any {
		_, lts := newTestServer(t)
		return do(t, "GET", lts.URL+"/v1/stats", nil, http.StatusOK)
	}()
	if kind := lpStats["engine_kind"].(string); kind != "lp" {
		t.Fatalf("LP server engine_kind = %q, want lp", kind)
	}
	if pr := lpStats["price"].(map[string]any); pr["rounds"].(float64) != 0 {
		t.Fatalf("LP server price block should be zero: %v", pr)
	}
}

// TestServerAllocationFeasible checks the composed allocation against the
// cluster budgets after a few churn rounds.
func TestServerAllocationFeasible(t *testing.T) {
	s, ts := newTestServer(t)
	for id := 0; id < 10; id++ {
		do(t, "POST", ts.URL+"/v1/jobs", jobSpec{
			ID:         id,
			Throughput: []float64{1 + float64(id%3), 2, 3 + float64(id%2)},
			Scale:      float64(1 + id%2),
		}, http.StatusAccepted)
	}
	do(t, "POST", ts.URL+"/v1/tick", nil, http.StatusOK)
	do(t, "DELETE", ts.URL+"/v1/jobs/2", nil, http.StatusAccepted)
	do(t, "POST", ts.URL+"/v1/jobs", jobSpec{ID: 77, Throughput: []float64{5, 5, 5}}, http.StatusAccepted)
	do(t, "POST", ts.URL+"/v1/tick", nil, http.StatusOK)

	s.mu.Lock()
	snap := s.snap
	s.mu.Unlock()
	used := make([]float64, 3)
	for idStr, ja := range snap.Jobs {
		var id int
		fmt.Sscanf(idStr, "%d", &id)
		scale := 1 + float64(id%2)
		if id == 77 {
			scale = 1
		}
		for i, v := range ja.X {
			if v < -1e-9 {
				t.Fatalf("job %s negative fraction %g", idStr, v)
			}
			used[i] += v * scale
		}
	}
	for i, u := range used {
		if u > 4+1e-6 {
			t.Fatalf("GPU type %d oversubscribed: %g > 4", i, u)
		}
		if math.IsNaN(u) {
			t.Fatalf("NaN usage on type %d", i)
		}
	}
}

// TestServerMetricsEndpoint checks the Prometheus exposition after a round:
// round latency histogram, engine counters, and per-endpoint HTTP series all
// appear with the right content type, and every response carries the
// monotonic round stamp.
func TestServerMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	for id := 0; id < 4; id++ {
		do(t, "POST", ts.URL+"/v1/jobs", jobSpec{ID: id, Throughput: []float64{1, 2, 3}}, http.StatusAccepted)
	}
	do(t, "POST", ts.URL+"/v1/tick", nil, http.StatusOK)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("GET /metrics content type %q, want text/plain exposition", ct)
	}
	if got := resp.Header.Get("X-Pop-Round"); got != "1" {
		t.Fatalf("X-Pop-Round = %q after one round, want \"1\"", got)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		"pop_rounds_total 1",
		"pop_round_seconds_bucket",
		`pop_round_seconds_bucket{le="+Inf"} 1`,
		"pop_round_seconds_sum",
		"pop_jobs 4",
		"pop_online_rounds_total 1",
		"pop_online_subsolves_total",
		"pop_lp_solves_total",
		"pop_lp_pivots_total",
		`pop_http_requests_total{path="/v1/jobs",code="202"} 4`,
		`pop_http_request_seconds_bucket{path="/v1/tick",le="+Inf"} 1`,
		"# TYPE pop_round_seconds histogram",
		"# HELP pop_rounds_total",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("GET /metrics missing %q in:\n%s", want, body)
		}
	}

	// A request that misses every route books under the fallback label
	// rather than minting a series per raw URL.
	if r2, err := http.Get(ts.URL + "/no/such/route"); err == nil {
		r2.Body.Close()
	}
	resp2, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	raw2, _ := io.ReadAll(resp2.Body)
	if !strings.Contains(string(raw2), `path="unmatched"`) {
		t.Fatal("unrouted request did not book under path=\"unmatched\"")
	}
}

// TestServerStatsSearchBlock: /v1/stats carries the milp search section with
// a stable schema (zeros here — the bundled cluster policies are pure LPs)
// and the engine section keyed by the wire names the JSON tags pin down.
func TestServerStatsSearchBlock(t *testing.T) {
	_, ts := newTestServer(t)
	do(t, "POST", ts.URL+"/v1/jobs", jobSpec{ID: 0, Throughput: []float64{1, 1, 1}}, http.StatusAccepted)
	do(t, "POST", ts.URL+"/v1/tick", nil, http.StatusOK)
	stats := do(t, "GET", ts.URL+"/v1/stats", nil, http.StatusOK)
	search, ok := stats["search"].(map[string]any)
	if !ok {
		t.Fatal("/v1/stats missing search section")
	}
	for _, key := range []string{"nodes", "warm_nodes", "cold_fallbacks", "heuristic_solves", "lp_pivots", "dual_pivots"} {
		if _, ok := search[key].(float64); !ok {
			t.Fatalf("search section missing %q: %v", key, search)
		}
	}
	eng, ok := stats["engine"].(map[string]any)
	if !ok {
		t.Fatal("/v1/stats missing engine section")
	}
	for _, key := range []string{"rounds", "sub_solves", "warm_attempts", "warm_hits", "iterations", "arrivals"} {
		if _, ok := eng[key].(float64); !ok {
			t.Fatalf("engine section missing %q: %v", key, eng)
		}
	}
}

// TestServerConcurrentLoad hammers submit/remove/tick/stats/metrics from
// many goroutines at once; run under -race this is the data-race check for
// the whole observability path (registry, round counter, middleware).
func TestServerConcurrentLoad(t *testing.T) {
	_, ts := newTestServer(t)
	const (
		workers = 8
		rounds  = 20
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	req := func(method, path string, body any, wantCode int) error {
		var buf bytes.Buffer
		if body != nil {
			if err := json.NewEncoder(&buf).Encode(body); err != nil {
				return err
			}
		}
		r, err := http.NewRequest(method, ts.URL+path, &buf)
		if err != nil {
			return err
		}
		resp, err := http.DefaultClient.Do(r)
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if wantCode != 0 && resp.StatusCode != wantCode {
			return fmt.Errorf("%s %s: status %d, want %d", method, path, resp.StatusCode, wantCode)
		}
		return nil
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				id := w*rounds + i
				if err := req("POST", "/v1/jobs", jobSpec{
					ID:         id,
					Throughput: []float64{1, 2, 3 + float64(id%4)},
				}, http.StatusAccepted); err != nil {
					errs <- err
					return
				}
				var err error
				switch i % 4 {
				case 0:
					err = req("POST", "/v1/tick", nil, http.StatusOK)
				case 1:
					err = req("GET", "/v1/stats", nil, http.StatusOK)
				case 2:
					err = req("GET", "/metrics", nil, http.StatusOK)
				case 3:
					err = req("DELETE", fmt.Sprintf("/v1/jobs/%d", id), nil, 0)
				}
				if err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// One final round then a consistency probe: counters visible in both
	// /v1/stats and /metrics, round stamp monotone and positive.
	do(t, "POST", ts.URL+"/v1/tick", nil, http.StatusOK)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	stamp, err := strconv.Atoi(resp.Header.Get("X-Pop-Round"))
	if err != nil || stamp < 1 {
		t.Fatalf("bad X-Pop-Round %q after load", resp.Header.Get("X-Pop-Round"))
	}
	raw, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(raw), "pop_rounds_total") {
		t.Fatal("metrics lost pop_rounds_total under load")
	}
	if got := engineStat(t, ts, "rounds"); got < float64(stamp) {
		t.Fatalf("engine rounds %g < round stamp %d", got, stamp)
	}
}

// TestServerGracefulShutdown drives the real run() loop: submit work over
// the live listener, start rounds ticking, then cancel the context (as
// SIGINT/SIGTERM would) and require run to drain the in-flight round and
// return cleanly, leaving the engine in a consistent post-round state.
func TestServerGracefulShutdown(t *testing.T) {
	s, err := newServer(cluster.NewCluster(4, 4, 4), serverConfig{policy: "maxmin", opts: online.Options{K: 2}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() { runErr <- run(ctx, ln, s, time.Millisecond) }()

	url := "http://" + ln.Addr().String()
	for id := 0; id < 8; id++ {
		do(t, "POST", url+"/v1/jobs", jobSpec{ID: id, Throughput: []float64{1, 2, 3}}, http.StatusAccepted)
	}
	// Let the ticker land a round that has absorbed the whole batch;
	// shutdown drains the round in flight, it does not flush mutations
	// still queued for the next one.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.mu.Lock()
		done := s.snap.NumJobs == 8
		s.mu.Unlock()
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no round absorbed the batch before shutdown")
		}
		time.Sleep(time.Millisecond)
	}

	cancel()
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("run returned %v on graceful shutdown, want nil", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run did not return after context cancellation")
	}

	// The listener is closed: new connections must fail.
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Fatal("server still accepting connections after shutdown")
	}
	// And the drained engine state is consistent: the last snapshot holds
	// every submitted job.
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.snap.NumJobs != 8 {
		t.Fatalf("final snapshot has %d jobs, want 8", s.snap.NumJobs)
	}
	st := s.snap.engStats
	if st.Rounds < 1 || st.SubSolves < 1 {
		t.Fatalf("engine never worked: %+v", st)
	}
}

// TestServerShutdownWithoutTicker: run with round=0 (manual ticks only)
// must also exit cleanly on cancellation.
func TestServerShutdownWithoutTicker(t *testing.T) {
	s, err := newServer(cluster.NewCluster(2, 2, 2), serverConfig{policy: "makespan", opts: online.Options{K: 1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() { runErr <- run(ctx, ln, s, 0) }()
	url := "http://" + ln.Addr().String()
	do(t, "POST", url+"/v1/jobs", jobSpec{ID: 1, Throughput: []float64{1, 1, 1}}, http.StatusAccepted)
	do(t, "POST", url+"/v1/tick", nil, http.StatusOK)
	cancel()
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("run returned %v, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not return")
	}
}
