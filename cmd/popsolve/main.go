// Command popsolve solves a linear or mixed-integer program given in
// free-format MPS, using this repository's from-scratch simplex and
// branch-and-bound. It demonstrates that the solver substrate underneath
// the POP experiments is a usable standalone tool.
//
// Usage:
//
//	popsolve model.mps            # solve, print status/objective/nonzeros
//	popsolve -all model.mps       # also print zero-valued variables
//	popsolve -relax model.mps     # ignore integrality markers
//	echo "..." | popsolve -       # read from stdin
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"pop/internal/lp"
	"pop/internal/milp"
)

func main() {
	var (
		showAll = flag.Bool("all", false, "print all variables, not just nonzeros")
		relax   = flag.Bool("relax", false, "solve the LP relaxation even if integer markers are present")
		maxSecs = flag.Float64("timelimit", 300, "MILP time limit in seconds")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: popsolve [-all] [-relax] <model.mps | ->")
		os.Exit(2)
	}

	var in io.Reader = os.Stdin
	if name := flag.Arg(0); name != "-" {
		f, err := os.Open(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}

	prob, intVars, err := lp.ReadMPS(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("model: %d variables (%d integer), %d constraints, %d nonzeros\n",
		prob.NumVariables(), len(intVars), prob.NumConstraints(), prob.NumNonzeros())

	start := time.Now()
	var status string
	var objective float64
	var x []float64

	if len(intVars) > 0 && !*relax {
		mp := milp.Wrap(prob, intVars)
		sol, err := mp.SolveWithOptions(milp.Options{
			TimeLimit: time.Duration(*maxSecs * float64(time.Second)),
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		status = sol.Status.String()
		objective = sol.Objective
		x = sol.X
		fmt.Printf("branch-and-bound: %d nodes, gap %.3g\n", sol.Nodes, sol.Gap)
	} else {
		sol, err := prob.SolveWithOptions(lp.Options{Scale: true})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		status = sol.Status.String()
		objective = sol.Objective
		x = sol.X
		fmt.Printf("simplex: %d iterations\n", sol.Iterations)
	}
	fmt.Printf("status: %s in %v\n", status, time.Since(start).Round(time.Millisecond))
	if status != "optimal" && status != "feasible" {
		os.Exit(0)
	}
	fmt.Printf("objective: %.10g\n", objective)
	for j, v := range x {
		if *showAll || v > 1e-9 || v < -1e-9 {
			fmt.Printf("  x%-6d = %.8g\n", j, v)
		}
	}
}
