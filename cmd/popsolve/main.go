// Command popsolve solves a linear or mixed-integer program given in
// free-format MPS, using this repository's from-scratch simplex and
// branch-and-bound. It demonstrates that the solver substrate underneath
// the POP experiments is a usable standalone tool.
//
// Usage:
//
//	popsolve model.mps            # solve, print status/objective/nonzeros
//	popsolve -all model.mps       # also print zero-valued variables
//	popsolve -relax model.mps     # ignore integrality markers
//	echo "..." | popsolve -       # read from stdin
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"pop/internal/lp"
	"pop/internal/milp"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is main with its environment abstracted, so the end-to-end test can
// drive the tool in-process.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("popsolve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		showAll = fs.Bool("all", false, "print all variables, not just nonzeros")
		relax   = fs.Bool("relax", false, "solve the LP relaxation even if integer markers are present")
		maxSecs = fs.Float64("timelimit", 300, "MILP time limit in seconds")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: popsolve [-all] [-relax] <model.mps | ->")
		return 2
	}

	in := stdin
	if name := fs.Arg(0); name != "-" {
		f, err := os.Open(name)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		defer f.Close()
		in = f
	}

	prob, intVars, err := lp.ReadMPS(in)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	fmt.Fprintf(stdout, "model: %d variables (%d integer), %d constraints, %d nonzeros\n",
		prob.NumVariables(), len(intVars), prob.NumConstraints(), prob.NumNonzeros())

	start := time.Now()
	var status string
	var objective float64
	var x []float64

	if len(intVars) > 0 && !*relax {
		mp := milp.Wrap(prob, intVars)
		sol, err := mp.SolveWithOptions(milp.Options{
			TimeLimit: time.Duration(*maxSecs * float64(time.Second)),
		})
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		status = sol.Status.String()
		objective = sol.Objective
		x = sol.X
		fmt.Fprintf(stdout, "branch-and-bound: %d nodes (%d warm, %d cold-fallback), gap %.3g\n",
			sol.Nodes, sol.WarmNodes, sol.ColdFallbacks, sol.Gap)
		fmt.Fprintf(stdout, "pivots: %d (%d dual), build %v, solve %v\n",
			sol.LPPivots, sol.DualPivots,
			time.Duration(sol.BuildNs).Round(time.Microsecond),
			time.Duration(sol.SolveNs).Round(time.Microsecond))
	} else {
		sol, err := prob.SolveWithOptions(lp.Options{Scale: true})
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		status = sol.Status.String()
		objective = sol.Objective
		x = sol.X
		fmt.Fprintf(stdout, "simplex: %d iterations\n", sol.Iterations)
	}
	fmt.Fprintf(stdout, "status: %s in %v\n", status, time.Since(start).Round(time.Millisecond))
	if status != "optimal" && status != "feasible" {
		return 0
	}
	fmt.Fprintf(stdout, "objective: %.10g\n", objective)
	for j, v := range x {
		if *showAll || v > 1e-9 || v < -1e-9 {
			fmt.Fprintf(stdout, "  x%-6d = %.8g\n", j, v)
		}
	}
	return 0
}
