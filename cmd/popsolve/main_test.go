package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The chocolate-factory classic: max 5x+4y s.t. 6x+4y ≤ 24, x+2y ≤ 6;
// optimum 21 at (3, 1.5).
const tinyLP = `NAME CHOCOLATE
OBJSENSE
    MAX
ROWS
 N  COST
 L  LIM1
 L  LIM2
COLUMNS
    X  COST  5  LIM1  6
    X  LIM2  1
    Y  COST  4  LIM1  4
    Y  LIM2  2
RHS
    RHS  LIM1  24  LIM2  6
ENDATA
`

// A tiny MILP: max x+y, x+y ≤ 1.5, both binary → optimum 1.
const tinyMILP = `NAME KNAP
OBJSENSE
    MAX
ROWS
 N  OBJ
 L  CAP
COLUMNS
    MARKER  'MARKER'  'INTORG'
    X  OBJ  1  CAP  1
    Y  OBJ  1  CAP  1
    MARKER  'MARKER'  'INTEND'
RHS
    RHS  CAP  1.5
BOUNDS
 UP BND  X  1
 UP BND  Y  1
ENDATA
`

// TestEndToEndLPFromStdin: tiny instance in via "-", sane allocation out.
func TestEndToEndLPFromStdin(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-"}, strings.NewReader(tinyLP), &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	got := out.String()
	for _, want := range []string{
		"model: 2 variables (0 integer), 2 constraints",
		"status: optimal",
		"objective: 21",
		"x0",
		"= 3",
		"= 1.5",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

// TestEndToEndLPFromFile solves the same model from a file path.
func TestEndToEndLPFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tiny.mps")
	if err := os.WriteFile(path, []byte(tinyLP), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	if code := run([]string{path}, strings.NewReader(""), &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "objective: 21") {
		t.Fatalf("wrong objective:\n%s", out.String())
	}
}

// TestEndToEndMILPAndRelax: integer markers honoured, -relax ignores them.
func TestEndToEndMILPAndRelax(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-"}, strings.NewReader(tinyMILP), &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "branch-and-bound:") || !strings.Contains(out.String(), "objective: 1\n") {
		t.Fatalf("MILP output wrong:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "pivots:") || !strings.Contains(out.String(), "dual)") {
		t.Fatalf("MILP search stats missing:\n%s", out.String())
	}

	out.Reset()
	if code := run([]string{"-relax", "-"}, strings.NewReader(tinyMILP), &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "simplex:") || !strings.Contains(out.String(), "objective: 1.5") {
		t.Fatalf("relaxation output wrong:\n%s", out.String())
	}
}

// TestEndToEndBadUsage: wrong arguments and unreadable files exit non-zero.
func TestEndToEndBadUsage(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(nil, strings.NewReader(""), &out, &errOut); code != 2 {
		t.Fatalf("no-args exit %d, want 2", code)
	}
	if code := run([]string{"/does/not/exist.mps"}, strings.NewReader(""), &out, &errOut); code != 1 {
		t.Fatalf("missing-file exit %d, want 1", code)
	}
	if code := run([]string{"-"}, strings.NewReader("garbage\n"), &out, &errOut); code != 1 {
		t.Fatalf("garbage exit %d, want 1", code)
	}
	if code := run([]string{"-h"}, strings.NewReader(""), &out, &errOut); code != 0 {
		t.Fatalf("-h exit %d, want 0", code)
	}
}
