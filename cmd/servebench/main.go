// Command servebench measures the sharded serving path end to end: an
// in-process coordinator scatter/gathers rounds over real shard-worker
// subprocesses (each a separate OS process serving the internal/shard wire
// protocol over loopback HTTP), with a simulated client population under
// steady churn. The same workload runs at each requested shard count, so
// the record shows what fanning the round out over workers buys — and what
// the wire costs — against the single-worker baseline.
//
// The workers are this binary re-executed with the hidden __worker
// subcommand, so the benchmark exercises true multi-process serving:
// JSON over TCP, per-worker engines warm across rounds, no shared memory.
//
// Usage:
//
//	servebench [-o BENCH_serve.json] [-shards 1,2,4] [-clients 100000]
//	           [-rounds 6] [-churn 0.01] [-policy price] [-k 1]
//	           [-deadline 120s] [-seed 1] [-big] [-quick]
//
// -big runs the 1M-client population the paper's serving story targets;
// -quick shrinks everything to smoke-test size (CI). Round 1 (the cold
// full-registry scatter) is recorded separately as load_ms; the steady
// churn rounds that follow are the per-round figures.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"pop/internal/cluster"
	"pop/internal/shard"
)

// addrPrefix is the line a worker subprocess prints once it is listening.
const addrPrefix = "SERVEBENCH_ADDR "

type record struct {
	Shards  int `json:"shards"`
	Clients int `json:"clients"`
	// LoadMs is round 1: the cold scatter that carries the whole client
	// registry to the workers and solves from scratch.
	LoadMs float64 `json:"load_ms"`
	// Round latencies over the steady churn rounds (coordinator wall time:
	// scatter + worker solve + gather + merge).
	RoundMsMean float64 `json:"round_ms_mean"`
	RoundMsP50  float64 `json:"round_ms_p50"`
	RoundMsP95  float64 `json:"round_ms_p95"`
	// SpeedupVs1 compares the mean steady round against the 1-shard run.
	SpeedupVs1 float64 `json:"speedup_vs_1,omitempty"`
	// StaleRounds counts rounds where any worker missed the deadline;
	// StaleJobs totals the clients served stale rows across the run.
	StaleRounds int   `json:"stale_rounds"`
	StaleJobs   int64 `json:"stale_jobs"`
	Rebuilds    int64 `json:"rebuilds"`
	// SumEffThr is the final round's total effective throughput — the
	// cross-shard-count sanity figure (POP's partitions should not cost
	// much aggregate quality as the fleet grows).
	SumEffThr float64 `json:"sum_eff_thr"`
}

type report struct {
	GeneratedAt string   `json:"generated_at"`
	Seed        int64    `json:"seed"`
	NumCPU      int      `json:"num_cpu"`
	Policy      string   `json:"policy"`
	Clients     int      `json:"clients"`
	Rounds      int      `json:"rounds"`
	Churn       float64  `json:"churn"`
	Shards      []int    `json:"shard_counts"`
	Records     []record `json:"records"`
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "__worker" {
		if err := workerMain(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "servebench worker:", err)
			os.Exit(1)
		}
		return
	}
	var (
		out      = flag.String("o", "BENCH_serve.json", "output file ('-' for stdout)")
		shardsCS = flag.String("shards", "1,2,4", "comma-separated shard-worker counts")
		clients  = flag.Int("clients", 100_000, "simulated client population")
		rounds   = flag.Int("rounds", 6, "steady churn rounds after the cold load")
		churn    = flag.Float64("churn", 0.01, "fraction of clients replaced per round")
		policy   = flag.String("policy", "price", "worker policy: price | maxmin | makespan | spacesharing")
		k        = flag.Int("k", 1, "POP sub-problems per worker engine (LP policies)")
		deadline = flag.Duration("deadline", 120*time.Second, "per-round scatter/gather deadline")
		seed     = flag.Int64("seed", 1, "workload seed")
		big      = flag.Bool("big", false, "1M-client population (overrides -clients)")
		quick    = flag.Bool("quick", false, "smoke-test sizes only (CI)")
	)
	flag.Parse()
	if *big {
		*clients = 1_000_000
	}
	if *quick {
		*clients, *rounds, *shardsCS = 2000, 3, "1,2"
	}
	var counts []int
	for _, f := range strings.Split(*shardsCS, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "servebench: bad -shards entry %q\n", f)
			os.Exit(2)
		}
		counts = append(counts, n)
	}

	rep := report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Seed:        *seed,
		NumCPU:      runtime.NumCPU(),
		Policy:      *policy,
		Clients:     *clients,
		Rounds:      *rounds,
		Churn:       *churn,
		Shards:      counts,
	}
	for _, n := range counts {
		rec, err := runFleet(n, *clients, *rounds, *churn, *policy, *k, *deadline, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "servebench: %d shards: %v\n", n, err)
			os.Exit(1)
		}
		if len(rep.Records) > 0 && rec.RoundMsMean > 0 {
			rec.SpeedupVs1 = rep.Records[0].RoundMsMean / rec.RoundMsMean
		}
		rep.Records = append(rep.Records, rec)
		fmt.Fprintf(os.Stderr, "shards=%d clients=%d load=%.0fms round mean=%.1fms p95=%.1fms stale_rounds=%d\n",
			n, *clients, rec.LoadMs, rec.RoundMsMean, rec.RoundMsP95, rec.StaleRounds)
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "servebench:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "servebench:", err)
		os.Exit(1)
	}
}

// benchCluster sizes the pool to the population so per-client shares stay
// in a sane range at any scale.
func benchCluster(clients int) cluster.Cluster {
	per := float64(clients) / 8
	if per < 4 {
		per = 4
	}
	return cluster.NewCluster(per, per, per)
}

func benchJob(id int, rnd *rand.Rand) cluster.Job {
	return cluster.Job{
		ID:         id,
		Throughput: []float64{1 + rnd.Float64(), 2 + 2*rnd.Float64(), 3 + 3*rnd.Float64()},
		Weight:     1,
		Scale:      1,
		NumSteps:   1000,
		Priority:   1,
	}
}

// runFleet spawns n worker subprocesses, drives the round sequence through
// a coordinator, and tears the fleet down.
func runFleet(n, clients, rounds int, churn float64, policy string, k int, deadline time.Duration, seed int64) (record, error) {
	self, err := os.Executable()
	if err != nil {
		return record{}, err
	}
	pool := benchCluster(clients)
	gpus := make([]string, len(pool.NumGPUs))
	for i, g := range pool.NumGPUs {
		gpus[i] = strconv.FormatFloat(g/float64(n), 'g', -1, 64)
	}

	var urls []string
	var procs []*exec.Cmd
	defer func() {
		for _, p := range procs {
			p.Process.Signal(syscall.SIGTERM)
		}
		for _, p := range procs {
			p.Wait()
		}
	}()
	for i := 0; i < n; i++ {
		cmd := exec.Command(self, "__worker",
			"-listen", "127.0.0.1:0",
			"-policy", policy,
			"-k", strconv.Itoa(k),
			"-gpus", strings.Join(gpus, ","),
		)
		cmd.Stderr = os.Stderr
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return record{}, err
		}
		if err := cmd.Start(); err != nil {
			return record{}, err
		}
		procs = append(procs, cmd)
		addr, err := awaitAddr(stdout)
		if err != nil {
			return record{}, fmt.Errorf("worker %d: %w", i, err)
		}
		urls = append(urls, "http://"+addr)
	}
	coord, err := shard.NewCoordinator(urls, shard.CoordinatorOptions{Deadline: deadline})
	if err != nil {
		return record{}, err
	}

	rnd := rand.New(rand.NewSource(seed))
	live := make(map[int]cluster.Job, clients)
	order := make([]int, 0, clients)
	for id := 0; id < clients; id++ {
		live[id] = benchJob(id, rnd)
		order = append(order, id)
	}
	nextID := clients
	activeOf := func() []cluster.Job {
		out := make([]cluster.Job, 0, len(order))
		for _, id := range order {
			out = append(out, live[id])
		}
		return out
	}

	rec := record{Shards: n, Clients: clients}
	start := time.Now()
	if _, err := coord.Step(activeOf(), pool); err != nil {
		return record{}, fmt.Errorf("cold load round: %w", err)
	}
	rec.LoadMs = float64(time.Since(start).Microseconds()) / 1000

	perRound := int(float64(clients) * churn)
	if perRound < 1 {
		perRound = 1
	}
	times := make([]float64, 0, rounds)
	var lastAlloc *cluster.Allocation
	var lastActive []cluster.Job
	for r := 0; r < rounds; r++ {
		// Replace perRound clients: drop the oldest, admit fresh arrivals —
		// steady-state churn, not a workload reshape.
		for i := 0; i < perRound; i++ {
			delete(live, order[i])
			live[nextID] = benchJob(nextID, rnd)
			order = append(order, nextID)
			nextID++
		}
		order = order[perRound:]
		lastActive = activeOf()

		start := time.Now()
		alloc, err := coord.Step(lastActive, pool)
		if err != nil {
			return record{}, fmt.Errorf("round %d: %w", r+1, err)
		}
		times = append(times, float64(time.Since(start).Microseconds())/1000)
		if s := coord.StaleJobs(); s > 0 {
			rec.StaleRounds++
			rec.StaleJobs += int64(s)
		}
		lastAlloc = alloc
	}
	for _, ws := range coord.Status() {
		rec.Rebuilds += ws.Rebuilds
	}
	if lastAlloc != nil {
		for i := range lastActive {
			rec.SumEffThr += lastAlloc.EffThr[i]
		}
	}
	sort.Float64s(times)
	for _, ms := range times {
		rec.RoundMsMean += ms
	}
	if len(times) > 0 {
		rec.RoundMsMean /= float64(len(times))
		rec.RoundMsP50 = times[len(times)/2]
		rec.RoundMsP95 = times[(len(times)*95)/100]
	}
	return rec, nil
}

// awaitAddr reads the worker's address announcement and then keeps
// draining its stdout in the background so the pipe never blocks it.
func awaitAddr(stdout interface{ Read([]byte) (int, error) }) (string, error) {
	sc := bufio.NewScanner(stdout)
	deadline := time.Now().Add(30 * time.Second)
	for sc.Scan() {
		line := sc.Text()
		if addr, ok := strings.CutPrefix(line, addrPrefix); ok {
			go func() {
				for sc.Scan() {
				}
			}()
			return strings.TrimSpace(addr), nil
		}
		if time.Now().After(deadline) {
			break
		}
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", fmt.Errorf("worker exited before announcing its address")
}

// workerMain is the hidden subcommand each subprocess runs: a shard worker
// on a loopback listener, address announced on stdout.
func workerMain(args []string) error {
	fs := flag.NewFlagSet("servebench __worker", flag.ExitOnError)
	var (
		listen = fs.String("listen", "127.0.0.1:0", "listen address")
		policy = fs.String("policy", "price", "engine policy")
		k      = fs.Int("k", 1, "POP sub-problems (LP policies)")
		gpusCS = fs.String("gpus", "4,4,4", "per-type GPU capacities for this worker's slice")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var gpus []float64
	for _, f := range strings.Split(*gpusCS, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return fmt.Errorf("bad -gpus entry %q", f)
		}
		gpus = append(gpus, v)
	}
	if len(gpus) != 3 {
		return fmt.Errorf("-gpus must have 3 entries, got %d", len(gpus))
	}
	b, err := shard.NewEngine(cluster.NewCluster(gpus[0], gpus[1], gpus[2]), shard.EngineConfig{
		Policy: *policy, K: *k,
	})
	if err != nil {
		return err
	}
	w := shard.NewWorker(b, shard.WorkerOptions{})
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	fmt.Printf("%s%s\n", addrPrefix, ln.Addr().String())
	os.Stdout.Sync()

	srv := &http.Server{Handler: w.Handler()}
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGTERM, syscall.SIGINT)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	select {
	case <-stop:
		srv.Close()
		return nil
	case err := <-done:
		if err == http.ErrServerClosed {
			return nil
		}
		return err
	}
}
