// Command popbench regenerates the POP paper's evaluation tables and
// figures from this repository's implementation.
//
// Usage:
//
//	popbench -list
//	popbench -exp fig9 [-scale small|medium|large]
//	popbench -exp all  [-scale small]
//
// Each experiment prints an aligned table whose rows mirror the series in
// the corresponding paper figure; EXPERIMENTS.md records the comparison
// against the paper's reported values.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pop/internal/experiments"
	"pop/internal/lp"
)

func main() {
	var (
		expName   = flag.String("exp", "", "experiment to run (see -list), or 'all'")
		scaleName = flag.String("scale", "medium", "problem scale: small|medium|large")
		backend   = flag.String("backend", "auto", "LP basis backend: auto|sparselu|dense")
		list      = flag.Bool("list", false, "list available experiments")
	)
	flag.Parse()

	be, err := lp.ParseBackend(*backend)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if be != lp.AutoBackend {
		lp.SetDefaultBackend(be)
	}

	if *list || *expName == "" {
		fmt.Println("available experiments:")
		for _, e := range experiments.Registry() {
			fmt.Printf("  %-8s %s\n", e.Name, e.Desc)
		}
		if *expName == "" && !*list {
			os.Exit(2)
		}
		return
	}

	scale, err := experiments.ParseScale(*scaleName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var entries []experiments.Entry
	if *expName == "all" {
		entries = experiments.Registry()
	} else {
		e, ok := experiments.Get(*expName)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *expName)
			os.Exit(2)
		}
		entries = []experiments.Entry{e}
	}

	for _, e := range entries {
		start := time.Now()
		res, err := e.Run(scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.Name, err)
			os.Exit(1)
		}
		fmt.Print(res.String())
		fmt.Printf("(%s at scale %s in %v)\n\n", e.Name, scale, time.Since(start).Round(time.Millisecond))
	}
}
