// Command pricebench measures the price-discovery allocation engine
// (internal/price) against the LP paths it substitutes for: per-round
// latency and allocation quality over low-churn online round sequences on
// the cluster and lb case studies, with the warm POP LP engine as the
// latency baseline and the single global LP solve as the quality reference.
// Gaps are reported, never hidden — the price engine is an approximation
// and the record says by how much.
//
// Families:
//
//	cluster-online  warm LP POP engine vs price engine over job-churn
//	                rounds, with the global max-min LP objective as the
//	                quality reference (gap_vs_global).
//	lb-online       warm LP POP shard balancer vs price engine over
//	                load-jitter rounds; quality is the worst band deviation.
//	price-scale     price engine alone at 50k–1M clients: cold vs warm
//	                iterations-to-clearing and warm per-round latency. The
//	                LP is not run at these sizes.
//	hybrid          batch: cold LP vs price-seeded LP (HybridMaxMin), same
//	                optimum by construction, wall clock compared.
//
// Usage:
//
//	pricebench [-engine all|lp|price|hybrid] [-o BENCH_price.json] [-reps 3]
//	           [-rounds 6] [-seed 1] [-quick] [-metrics]
//
// -quick shrinks every family to smoke-test size (CI); -metrics dumps the
// price engine's Prometheus counters to stderr after the run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"time"

	"pop/internal/cluster"
	"pop/internal/lb"
	"pop/internal/lp"
	"pop/internal/obs"
	"pop/internal/online"
	"pop/internal/price"
)

// metricsObs is non-nil only under -metrics; the price engines carry it so
// their counters land in the dumped registry.
var (
	metricsReg *obs.Registry
	metricsObs *obs.Observer
)

type record struct {
	Family  string `json:"family"`
	Engine  string `json:"engine"` // lp | price | hybrid
	Clients int    `json:"clients"`
	Rounds  int    `json:"rounds"`
	// NsPerRound is the best-repetition mean per timed round (batch
	// families: per solve).
	NsPerRound int64 `json:"ns_per_round"`
	// Objective is the engine's policy objective on the final round
	// (cluster: alpha-fair max-min utility; lb: negated worst deviation).
	Objective float64 `json:"objective"`
	// GlobalObjective and GapVsGlobal compare against the single global LP
	// solve on the final round's jobs (cluster families only; 0 where the
	// reference was not computed).
	GlobalObjective float64 `json:"global_objective,omitempty"`
	GapVsGlobal     float64 `json:"gap_vs_global,omitempty"`
	// SpeedupVsLP is the LP baseline's ns_per_round over this engine's —
	// filled on price records when the lp record of the same family/size ran.
	SpeedupVsLP float64 `json:"speedup_vs_lp,omitempty"`
	// MaxDeviation is the lb band violation of the final round (lb only).
	MaxDeviation float64 `json:"max_deviation,omitempty"`
	// Price-engine accounting (price/hybrid records only).
	ColdIterations int     `json:"cold_iterations,omitempty"`
	WarmIterations int     `json:"warm_iterations,omitempty"`
	Residual       float64 `json:"residual,omitempty"`
	WarmRounds     int     `json:"warm_rounds,omitempty"`
}

type report struct {
	GeneratedAt string   `json:"generated_at"`
	Seed        int64    `json:"seed"`
	Reps        int      `json:"reps"`
	Records     []record `json:"records"`
}

func main() {
	var (
		engine  = flag.String("engine", "all", "engines to run: all | lp | price | hybrid")
		out     = flag.String("o", "BENCH_price.json", "output file ('-' for stdout)")
		reps    = flag.Int("reps", 3, "repetitions (best per-round time is kept)")
		rounds  = flag.Int("rounds", 6, "timed rounds per sequence")
		seed    = flag.Int64("seed", 1, "workload seed")
		quick   = flag.Bool("quick", false, "smoke-test sizes only (CI)")
		metrics = flag.Bool("metrics", false, "dump price-engine Prometheus counters to stderr")
	)
	flag.Parse()
	switch *engine {
	case "all", "lp", "price", "hybrid":
	default:
		fmt.Fprintf(os.Stderr, "pricebench: unknown -engine %q (want all|lp|price|hybrid)\n", *engine)
		os.Exit(2)
	}
	if *metrics {
		metricsReg = obs.NewRegistry()
		metricsObs = &obs.Observer{Metrics: metricsReg}
	}
	want := func(e string) bool { return *engine == "all" || *engine == e }

	rep := report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Seed:        *seed,
		Reps:        *reps,
	}

	clusterSizes := []int{400, 1600, 6400}
	lbSizes := []int{250, 1000, 4000}
	scaleSizes := []int{50_000, 250_000, 1_000_000}
	hybridSizes := []int{400, 1600}
	if *quick {
		clusterSizes, lbSizes, scaleSizes, hybridSizes = []int{200}, []int{120}, []int{20_000}, []int{200}
	}

	for _, n := range clusterSizes {
		recs := benchClusterOnline(n, *rounds, *reps, *seed, want("lp"), want("price"))
		rep.Records = append(rep.Records, recs...)
	}
	for _, n := range lbSizes {
		recs := benchLBOnline(n, *rounds, *reps, *seed, want("lp"), want("price"))
		rep.Records = append(rep.Records, recs...)
	}
	if want("price") {
		for _, n := range scaleSizes {
			rep.Records = append(rep.Records, benchPriceScale(n, *reps, *seed))
		}
	}
	if want("hybrid") {
		for _, n := range hybridSizes {
			rep.Records = append(rep.Records, benchHybrid(n, *reps, *seed)...)
		}
	}

	for _, r := range rep.Records {
		fmt.Fprintf(os.Stderr, "%-14s %-6s clients=%-8d ns/round=%-12v obj=%-10.4f gap=%-7.4f speedup=%-6.2f warmIters=%-5d coldIters=%-5d\n",
			r.Family, r.Engine, r.Clients, time.Duration(r.NsPerRound),
			r.Objective, r.GapVsGlobal, r.SpeedupVsLP, r.WarmIterations, r.ColdIterations)
	}

	if *metrics {
		metricsReg.WritePrometheus(os.Stderr)
	}

	enc, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "pricebench:", err)
		os.Exit(1)
	}
}

// churnRounds drives one engine through a low-churn round sequence (2% of
// jobs replaced per round plus a few weight jitters) and returns the best
// mean per-round latency across reps, the final objective, and the final
// active job set. step abstracts over the LP and price cluster engines.
type clusterEngine interface {
	Upsert(cluster.Job)
	Remove(id int) bool
	Step(active []cluster.Job, c cluster.Cluster) (*cluster.Allocation, error)
	Objective() float64
}

func clusterSequence(n int, rounds int, seed int64) (base []cluster.Job, play func(e clusterEngine) (nsPerRound int64, obj float64, final []cluster.Job)) {
	base = cluster.GenerateJobs(n, seed+2, 0.2)
	play = func(e clusterEngine) (int64, float64, []cluster.Job) {
		rng := rand.New(rand.NewSource(seed))
		live := make([]cluster.Job, len(base))
		copy(live, base)
		c := clusterFor(n)
		nextID := n
		// Untimed warm-up round.
		_, err := e.Step(live, c)
		die(err)
		var ns int64
		for round := 0; round < rounds; round++ {
			nChurn := int(math.Max(1, 0.02*float64(n)))
			for t := 0; t < nChurn; t++ {
				i := rng.Intn(len(live))
				nj := cluster.GenerateJobs(1, seed+int64(nextID), 0.2)[0]
				nj.ID = nextID
				nextID++
				live[i] = nj
			}
			for t := 0; t < nChurn; t++ {
				live[rng.Intn(len(live))].Weight = 0.5 + rng.Float64()*2
			}
			start := time.Now()
			_, err := e.Step(live, c)
			die(err)
			ns += time.Since(start).Nanoseconds()
		}
		return ns / int64(rounds), e.Objective(), live
	}
	return base, play
}

func clusterFor(n int) cluster.Cluster {
	g := float64(n) / 5
	return cluster.NewCluster(g, g, g)
}

// lpObjective converts the online engine's reported objective to the same
// alpha-fair max-min scale the price engine reports: both already report the
// min weighted ratio for maxmin, so they compare directly.
func benchClusterOnline(n, rounds, reps int, seed int64, runLP, runPrice bool) []record {
	var out []record
	_, play := clusterSequence(n, rounds, seed)
	c := clusterFor(n)

	var lpRec *record
	var finalJobs []cluster.Job
	if runLP {
		rec := record{Family: "cluster-online", Engine: "lp", Clients: n, Rounds: rounds}
		best := int64(math.MaxInt64)
		k := n / 100
		if k < 4 {
			k = 4
		}
		for r := 0; r < reps; r++ {
			eng, err := online.NewClusterEngine(c, online.MaxMinFairness, online.Options{K: k, Parallel: true}, lp.Options{})
			die(err)
			ns, _, live := play(eng)
			if ns < best {
				best = ns
			}
			if finalJobs == nil {
				finalJobs = live
			}
			// The online engine reports the k-partitioned objective; score
			// the composed allocation on the global metric instead.
			a, err := eng.Step(live, c)
			die(err)
			rec.Objective = price.MaxMinObjective(live, c, a)
		}
		rec.NsPerRound = best
		out = append(out, rec)
		lpRec = &out[len(out)-1]
	}

	if runPrice {
		rec := record{Family: "cluster-online", Engine: "price", Clients: n, Rounds: rounds}
		best := int64(math.MaxInt64)
		for r := 0; r < reps; r++ {
			eng, err := price.NewClusterEngine(c, price.MaxMinFairness,
				price.EngineOptions{Solver: price.Options{Seed: seed, Parallel: true, Obs: metricsObs}})
			die(err)
			ns, obj, live := play(eng)
			if ns < best {
				best = ns
			}
			if finalJobs == nil {
				finalJobs = live
			}
			st := eng.Stats()
			rec.Objective = obj
			rec.Residual = st.LastResidual
			rec.WarmRounds = st.WarmPriceRounds
			rec.WarmIterations = st.LastIterations
			if st.WarmPriceRounds > 0 {
				// Back out the cold first round assuming the final round's
				// iteration count is typical of the warm rounds.
				if cold := int(st.Iterations) - st.LastIterations*st.WarmPriceRounds; cold > 0 {
					rec.ColdIterations = cold
					rec.WarmIterations = (int(st.Iterations) - cold) / st.WarmPriceRounds
				}
			}
		}
		rec.NsPerRound = best
		if lpRec != nil && best > 0 {
			rec.SpeedupVsLP = float64(lpRec.NsPerRound) / float64(best)
		}
		out = append(out, rec)
	}

	// Global LP reference on the final round's jobs: the quality yardstick
	// both engines are gapped against.
	if finalJobs != nil {
		a, err := cluster.MaxMinFairness(finalJobs, c, lp.Options{})
		die(err)
		global := price.MaxMinObjective(finalJobs, c, a)
		for i := range out {
			out[i].GlobalObjective = global
			if global > 0 {
				out[i].GapVsGlobal = (global - out[i].Objective) / global
			}
		}
	}
	return out
}

// benchLBOnline replays shard load jitter through the LP POP balancer and
// the price engine; quality is the worst band deviation of the final round.
func benchLBOnline(n, rounds, reps int, seed int64, runLP, runPrice bool) []record {
	const nServers = 20
	play := func(step func(*lb.Instance) (*lb.Assignment, error)) (int64, float64) {
		inst := lb.NewInstance(n, nServers, 0.05, seed+3)
		a, err := step(inst)
		die(err)
		inst.Placement = a.Placed
		var ns int64
		for round := 0; round < rounds; round++ {
			inst.ShiftLoads(seed + int64(round)*101)
			start := time.Now()
			a, err = step(inst)
			die(err)
			ns += time.Since(start).Nanoseconds()
			inst.Placement = a.Placed
		}
		return ns / int64(rounds), a.MaxDeviation
	}

	var out []record
	var lpRec *record
	if runLP {
		rec := record{Family: "lb-online", Engine: "lp", Clients: n, Rounds: rounds}
		best := int64(math.MaxInt64)
		for r := 0; r < reps; r++ {
			eng, err := online.NewLBEngine(online.Options{K: 4, Parallel: true}, lp.Options{})
			die(err)
			ns, dev := play(eng.Step)
			if ns < best {
				best = ns
				rec.MaxDeviation = dev
				rec.Objective = -dev
			}
		}
		rec.NsPerRound = best
		out = append(out, rec)
		lpRec = &out[len(out)-1]
	}
	if runPrice {
		rec := record{Family: "lb-online", Engine: "price", Clients: n, Rounds: rounds}
		best := int64(math.MaxInt64)
		for r := 0; r < reps; r++ {
			eng, err := price.NewLBEngine(price.EngineOptions{Solver: price.Options{Seed: seed, Parallel: true, Obs: metricsObs}})
			die(err)
			ns, dev := play(eng.Step)
			st := eng.Stats()
			if ns < best {
				best = ns
				rec.MaxDeviation = dev
				rec.Objective = -dev
				rec.Residual = st.LastResidual
				rec.WarmRounds = st.WarmPriceRounds
				rec.WarmIterations = st.LastIterations
			}
		}
		rec.NsPerRound = best
		if lpRec != nil && best > 0 {
			rec.SpeedupVsLP = float64(lpRec.NsPerRound) / float64(best)
		}
		out = append(out, rec)
	}
	return out
}

// benchPriceScale runs the price engine alone at sizes far beyond what the
// LP is run at here: one cold solve, then one low-churn warm round, timing
// the warm round and recording both iteration counts.
func benchPriceScale(n, reps int, seed int64) record {
	rec := record{Family: "price-scale", Engine: "price", Clients: n, Rounds: 1}
	best := int64(math.MaxInt64)
	c := clusterFor(n)
	jobs := cluster.GenerateJobs(n, seed+2, 0.2)
	for r := 0; r < reps; r++ {
		eng, err := price.NewClusterEngine(c, price.MaxMinFairness,
			price.EngineOptions{Solver: price.Options{Seed: seed, Parallel: true, Obs: metricsObs}})
		die(err)
		_, err = eng.Step(jobs, c)
		die(err)
		cold := eng.Stats().LastIterations

		// 0.5% churn round rides the carried prices.
		live := make([]cluster.Job, len(jobs))
		copy(live, jobs)
		nChurn := int(math.Max(1, 0.005*float64(n)))
		fresh := cluster.GenerateJobs(nChurn, seed+7, 0.2)
		for i := range fresh {
			fresh[i].ID = n + i
			live[i] = fresh[i]
		}
		start := time.Now()
		_, err = eng.Step(live, c)
		die(err)
		ns := time.Since(start).Nanoseconds()
		st := eng.Stats()
		if ns < best {
			best = ns
			rec.ColdIterations = cold
			rec.WarmIterations = st.LastIterations
			rec.Residual = st.LastResidual
			rec.WarmRounds = st.WarmPriceRounds
			rec.Objective = eng.Objective()
		}
	}
	rec.NsPerRound = best
	return rec
}

// benchHybrid compares a cold global LP solve against the price-seeded LP
// (HybridMaxMin): same optimum by construction, wall clock side by side.
func benchHybrid(n, reps int, seed int64) []record {
	jobs := cluster.GenerateJobs(n, seed+2, 0.2)
	c := clusterFor(n)
	lpRec := record{Family: "hybrid", Engine: "lp", Clients: n, Rounds: 1, NsPerRound: math.MaxInt64}
	hyRec := record{Family: "hybrid", Engine: "hybrid", Clients: n, Rounds: 1, NsPerRound: math.MaxInt64}
	for r := 0; r < reps; r++ {
		start := time.Now()
		a, err := cluster.MaxMinFairness(jobs, c, lp.Options{})
		die(err)
		if ns := time.Since(start).Nanoseconds(); ns < lpRec.NsPerRound {
			lpRec.NsPerRound = ns
			lpRec.Objective = price.MaxMinObjective(jobs, c, a)
		}

		start = time.Now()
		ha, sol, err := price.HybridMaxMin(jobs, c, price.Options{Seed: seed, Parallel: true, Obs: metricsObs}, lp.Options{})
		die(err)
		if ns := time.Since(start).Nanoseconds(); ns < hyRec.NsPerRound {
			hyRec.NsPerRound = ns
			hyRec.Objective = price.MaxMinObjective(jobs, c, ha)
			if sol != nil {
				hyRec.ColdIterations = sol.Iterations
				hyRec.Residual = sol.Residual
			}
		}
	}
	lpRec.GlobalObjective = lpRec.Objective
	hyRec.GlobalObjective = lpRec.Objective
	if lpRec.Objective > 0 {
		hyRec.GapVsGlobal = (lpRec.Objective - hyRec.Objective) / lpRec.Objective
	}
	if hyRec.NsPerRound > 0 {
		hyRec.SpeedupVsLP = float64(lpRec.NsPerRound) / float64(hyRec.NsPerRound)
	}
	return []record{lpRec, hyRec}
}
