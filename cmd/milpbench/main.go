// Command milpbench measures the persistent-model branch and bound against
// the cold-per-node baseline on lb-shaped MILP instances (the §4.3
// load-balancing formulation, the MILP whose exponential solve time
// motivates POP). For each instance size it solves the same problem twice —
// warm (per-node dual-simplex re-solves from parent basis snapshots over
// one persistent lp.Model) and cold (Options.ColdNodes: every node from
// scratch) — and records node counts, primal/dual pivot totals, the
// build-vs-pivot time split, and node throughput. A workers sweep then runs
// the warm search at each requested worker count and records node
// throughput normalized to workers=1 — the parallel-search acceptance
// headline (≥2x at NumCPU≥4). It writes a JSON regression record
// (BENCH_milp.json via `make bench-milp`) so every PR has an
// exact-MILP-path perf trajectory to compare against; the warm-vs-cold
// headline number is the pivot ratio (cold pivots / warm pivots), which the
// persistent search must hold at ≥2x.
//
// Usage:
//
//	milpbench [-o BENCH_milp.json] [-reps 3] [-maxnodes 20000] [-seed 1] [-workers auto|1,2,4]
//	          [-trace trace.json]
//
// -trace writes a Chrome trace-event JSON (chrome://tracing / Perfetto) of
// the warm searches: each milp.search span holds per-worker lanes of
// milp.node spans with steal/fathom/incumbent instants.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"pop/internal/lb"
	"pop/internal/milp"
	"pop/internal/obs"
)

// benchObs is non-nil only under -trace; the warm searches carry it so
// their node solves emit span trees into the run trace (the cold baseline
// and the workers sweep stay untraced to keep the file readable).
var benchObs *obs.Observer

type record struct {
	Family  string `json:"family"`
	Shards  int    `json:"shards"`
	Servers int    `json:"servers"`
	IntVars int    `json:"int_vars"`
	Status  string `json:"status"`
	// Warm search accounting (persistent model, per-node dual re-solves).
	WarmNodes         int   `json:"warm_nodes"`
	WarmNodesAccepted int   `json:"warm_nodes_accepted"`
	WarmColdFallbacks int   `json:"warm_cold_fallbacks"`
	WarmLPPivots      int   `json:"warm_lp_pivots"`
	WarmDualPivots    int   `json:"warm_dual_pivots"`
	WarmNs            int64 `json:"warm_ns"`
	WarmBuildNs       int64 `json:"warm_build_ns"`
	WarmSolveNs       int64 `json:"warm_solve_ns"`
	// Cold baseline accounting (every node relaxation from scratch).
	ColdStatus   string `json:"cold_status"`
	ColdNodes    int    `json:"cold_nodes"`
	ColdLPPivots int    `json:"cold_lp_pivots"`
	ColdNs       int64  `json:"cold_ns"`
	ColdSolveNs  int64  `json:"cold_solve_ns"`
	// PivotRatio is cold/warm total LP pivots — the acceptance headline.
	// Speedup is the wall-clock ratio; NodesPerSec are solve throughputs.
	PivotRatio      float64 `json:"pivot_ratio"`
	Speedup         float64 `json:"speedup"`
	WarmNodesPerSec float64 `json:"warm_nodes_per_sec"`
	ColdNodesPerSec float64 `json:"cold_nodes_per_sec"`
	ObjAgree        bool    `json:"objectives_agree"`
	MaxObjDelta     float64 `json:"max_obj_delta"`
	// WorkersSweep scales the warm search across worker counts on the same
	// instance; ThroughputX is node throughput relative to workers=1 (the
	// parallel-search acceptance headline: ≥2x at NumCPU≥4).
	WorkersSweep []workersPoint `json:"workers_sweep"`
}

type workersPoint struct {
	Workers     int     `json:"workers"`
	Status      string  `json:"status"`
	Nodes       int     `json:"nodes"`
	Ns          int64   `json:"ns"`
	NodesPerSec float64 `json:"nodes_per_sec"`
	ThroughputX float64 `json:"throughput_vs_w1"`
	ObjAgree    bool    `json:"objective_agrees_w1"`
}

type report struct {
	GeneratedAt       string   `json:"generated_at"`
	Seed              int64    `json:"seed"`
	Reps              int      `json:"reps"`
	MaxNodes          int      `json:"max_nodes"`
	NumCPU            int      `json:"num_cpu"`
	WorkerCounts      []int    `json:"worker_counts"`
	GeomeanPivotRatio float64  `json:"geomean_pivot_ratio"`
	GeomeanSpeedup    float64  `json:"geomean_speedup"`
	Records           []record `json:"records"`
}

// parseWorkers parses the -workers flag: a comma-separated list of worker
// counts, or "auto" for 1, 2, 4, ... up to NumCPU.
func parseWorkers(s string) ([]int, error) {
	if s == "auto" {
		// Always sweep at least {1, 2} so the record carries a scaling
		// column even on single-CPU machines (num_cpu in the report says
		// how to read it), then double up to NumCPU.
		counts := []int{1, 2}
		for w := 4; w < runtime.NumCPU(); w *= 2 {
			counts = append(counts, w)
		}
		if n := runtime.NumCPU(); n > counts[len(counts)-1] {
			counts = append(counts, n)
		}
		return counts, nil
	}
	var counts []int
	for _, f := range strings.Split(s, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || w < 1 {
			return nil, fmt.Errorf("bad -workers entry %q", f)
		}
		counts = append(counts, w)
	}
	return counts, nil
}

func main() {
	var (
		out      = flag.String("o", "BENCH_milp.json", "output file ('-' for stdout)")
		reps     = flag.Int("reps", 3, "repetitions (best wall time per search is kept)")
		maxNodes = flag.Int("maxnodes", 20000, "node cap per search")
		seed     = flag.Int64("seed", 1, "instance seed")
		workers  = flag.String("workers", "auto", "worker counts to sweep: comma list or 'auto' (1,2,4,...,NumCPU)")
		traceOut = flag.String("trace", "", "write a Chrome trace-event JSON of the warm searches' node spans")
	)
	flag.Parse()

	var tr *obs.Trace
	if *traceOut != "" {
		tr = obs.NewTrace()
		benchObs = &obs.Observer{Trace: tr}
	}
	runSpan := benchObs.Span("run")

	counts, err := parseWorkers(*workers)
	die(err)
	rep := report{
		GeneratedAt:  time.Now().UTC().Format(time.RFC3339),
		Seed:         *seed,
		Reps:         *reps,
		MaxNodes:     *maxNodes,
		NumCPU:       runtime.NumCPU(),
		WorkerCounts: counts,
	}
	sizes := []struct{ shards, servers int }{
		{10, 3},
		{14, 4},
		{18, 5},
		{24, 6},
	}
	for _, sz := range sizes {
		rep.Records = append(rep.Records, bench(sz.shards, sz.servers, *reps, *maxNodes, *seed, counts))
	}
	runSpan.End()
	if tr != nil {
		if err := tr.WriteFile(*traceOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	logPivot, logSpeed := 0.0, 0.0
	for _, r := range rep.Records {
		fmt.Fprintf(os.Stderr,
			"lb %2dx%-2d %-8s nodes warm=%-5d cold=%-5d pivots warm=%-6d (dual %-5d) cold=%-6d ratio=%.2fx wall %-10v vs %-10v speedup=%.2fx agree=%v\n",
			r.Shards, r.Servers, r.Status, r.WarmNodes, r.ColdNodes,
			r.WarmLPPivots, r.WarmDualPivots, r.ColdLPPivots, r.PivotRatio,
			time.Duration(r.WarmNs), time.Duration(r.ColdNs), r.Speedup, r.ObjAgree)
		for _, wp := range r.WorkersSweep {
			fmt.Fprintf(os.Stderr,
				"         workers=%-2d %-8s nodes=%-5d wall %-10v nodes/s=%-9.0f throughput=%.2fx agree=%v\n",
				wp.Workers, wp.Status, wp.Nodes, time.Duration(wp.Ns), wp.NodesPerSec, wp.ThroughputX, wp.ObjAgree)
		}
		logPivot += math.Log(r.PivotRatio)
		logSpeed += math.Log(r.Speedup)
	}
	n := float64(len(rep.Records))
	rep.GeomeanPivotRatio = math.Exp(logPivot / n)
	rep.GeomeanSpeedup = math.Exp(logSpeed / n)
	fmt.Fprintf(os.Stderr, "geomean pivot ratio: %.2fx, geomean speedup: %.2fx\n",
		rep.GeomeanPivotRatio, rep.GeomeanSpeedup)

	enc, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "milpbench:", err)
		os.Exit(1)
	}
}

// bench solves one lb instance with both searches. No greedy incumbent is
// installed, so the tree is the formulation's own — a node-throughput
// measurement rather than a heuristic-pruning one. Pivot counts are
// deterministic per search; wall times keep the best of reps.
func bench(shards, servers, reps, maxNodes int, seed int64, workerCounts []int) record {
	inst := lb.NewInstance(shards, servers, 0.05, seed)
	inst.ShiftLoads(seed + 1)
	prob, _, _ := lb.BuildMILP(inst)

	rec := record{Family: "lb", Shards: shards, Servers: servers, IntVars: prob.NumInteger()}
	rec.WarmNs, rec.ColdNs = math.MaxInt64, math.MaxInt64

	var warmObj, coldObj float64
	for r := 0; r < reps; r++ {
		start := time.Now()
		warm, err := prob.SolveWithOptions(milp.Options{MaxNodes: maxNodes, Obs: benchObs})
		die(err)
		if ns := time.Since(start).Nanoseconds(); ns < rec.WarmNs {
			rec.WarmNs = ns
			rec.Status = warm.Status.String()
			rec.WarmNodes = warm.Nodes
			rec.WarmNodesAccepted = warm.WarmNodes
			rec.WarmColdFallbacks = warm.ColdFallbacks
			rec.WarmLPPivots = warm.LPPivots
			rec.WarmDualPivots = warm.DualPivots
			rec.WarmBuildNs = warm.BuildNs
			rec.WarmSolveNs = warm.SolveNs
			warmObj = warm.Objective
		}

		start = time.Now()
		cold, err := prob.SolveWithOptions(milp.Options{MaxNodes: maxNodes, ColdNodes: true})
		die(err)
		if ns := time.Since(start).Nanoseconds(); ns < rec.ColdNs {
			rec.ColdNs = ns
			rec.ColdStatus = cold.Status.String()
			rec.ColdNodes = cold.Nodes
			rec.ColdLPPivots = cold.LPPivots
			rec.ColdSolveNs = cold.SolveNs
			coldObj = cold.Objective
		}
	}

	rec.MaxObjDelta = math.Abs(warmObj - coldObj)
	// Truncated searches (node cap hit) may legitimately hold different
	// incumbents; the warm==cold contract is on completed searches.
	rec.ObjAgree = rec.Status != "optimal" || rec.ColdStatus != "optimal" ||
		rec.MaxObjDelta <= 1e-6*(1+math.Abs(coldObj))
	if rec.WarmLPPivots > 0 {
		rec.PivotRatio = float64(rec.ColdLPPivots) / float64(rec.WarmLPPivots)
	}
	if rec.WarmNs > 0 {
		rec.Speedup = float64(rec.ColdNs) / float64(rec.WarmNs)
	}
	rec.WarmNodesPerSec = float64(rec.WarmNodes) / (float64(rec.WarmNs) / 1e9)
	rec.ColdNodesPerSec = float64(rec.ColdNodes) / (float64(rec.ColdNs) / 1e9)

	// Workers sweep: the warm search again at each worker count (best wall
	// time of reps). Node counts vary with scheduling at Workers>1, so the
	// comparison is throughput (nodes/s), normalized to workers=1.
	var w1PerSec float64
	var w1Obj float64
	for _, w := range workerCounts {
		wp := workersPoint{Workers: w, Ns: math.MaxInt64}
		var obj float64
		for r := 0; r < reps; r++ {
			start := time.Now()
			sol, err := prob.SolveWithOptions(milp.Options{MaxNodes: maxNodes, Workers: w})
			die(err)
			if ns := time.Since(start).Nanoseconds(); ns < wp.Ns {
				wp.Ns = ns
				wp.Status = sol.Status.String()
				wp.Nodes = sol.Nodes
				obj = sol.Objective
			}
		}
		wp.NodesPerSec = float64(wp.Nodes) / (float64(wp.Ns) / 1e9)
		if w == 1 || w1PerSec == 0 {
			w1PerSec, w1Obj = wp.NodesPerSec, obj
		}
		wp.ThroughputX = wp.NodesPerSec / w1PerSec
		// Truncated searches may hold different incumbents; the contract is
		// on completed searches.
		wp.ObjAgree = wp.Status != "optimal" ||
			math.Abs(obj-w1Obj) <= 1e-6*(1+math.Abs(w1Obj))
		rec.WorkersSweep = append(rec.WorkersSweep, wp)
	}
	return rec
}
