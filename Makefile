GO ?= go

.PHONY: all build test test-short test-race vet lint fmt-check bench-lp bench-online bench-milp bench-price bench-serve bench ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

test-race:
	$(GO) test -race -short ./...

vet:
	$(GO) vet ./...

# lint runs vet plus staticcheck when it is installed (CI installs it in a
# dedicated blocking job; locally it is optional).
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@2025.1)"; \
	fi

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# bench-lp regenerates BENCH_lp.json, the LP backend perf trajectory
# (Dense vs SparseLU on te/cluster/lb-shaped instances at three sizes).
bench-lp:
	$(GO) run ./cmd/lpbench -reps 3 -o BENCH_lp.json

# bench-online regenerates BENCH_online.json, the online engine perf
# trajectory (warm incremental vs cold full re-solve across a dirty-fraction
# sweep on cluster, capacity-jitter, lb, TE demand-churn, and space-sharing
# round sequences).
bench-online:
	$(GO) run ./cmd/onlinebench -reps 3 -o BENCH_online.json

# bench-milp regenerates BENCH_milp.json, the exact-MILP perf trajectory
# (persistent-model branch and bound vs the cold-per-node baseline on
# lb-shaped instances; the headline is the LP pivot ratio, held at ≥2x).
bench-milp:
	$(GO) run ./cmd/milpbench -reps 3 -o BENCH_milp.json

# bench-price regenerates BENCH_price.json, the price-discovery engine's
# quality-vs-latency trajectory (price vs warm LP POP vs the global solve on
# cluster and lb online rounds, plus price-only scale rows up to 1M clients
# and the price-seeded hybrid LP).
bench-price:
	$(GO) run ./cmd/pricebench -reps 3 -o BENCH_price.json

# bench-serve regenerates BENCH_serve.json, the sharded serving trajectory:
# coordinator scatter/gather rounds over real shard-worker subprocesses at
# shard counts 1/2/4, 1M simulated clients under steady churn.
bench-serve:
	$(GO) run ./cmd/servebench -big -o BENCH_serve.json

# bench runs the paper-evaluation benchmark suite at Small scale.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

ci: fmt-check vet build test-short
