GO ?= go

.PHONY: all build test test-short vet fmt-check bench-lp bench ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# bench-lp regenerates BENCH_lp.json, the LP backend perf trajectory
# (Dense vs SparseLU on te/cluster/lb-shaped instances at three sizes).
bench-lp:
	$(GO) run ./cmd/lpbench -reps 3 -o BENCH_lp.json

# bench runs the paper-evaluation benchmark suite at Small scale.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

ci: fmt-check vet build test-short
